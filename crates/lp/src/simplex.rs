//! Two-phase primal simplex on a dense tableau.
//!
//! The solver handles general linear programs built with
//! [`LpProblem`](crate::problem::LpProblem):
//!
//! 1. variables are shifted so that every lower bound becomes 0, and finite
//!    upper bounds are turned into explicit `≤` rows;
//! 2. every constraint receives a slack, surplus and/or artificial column so
//!    that an identity basis is available;
//! 3. **phase 1** minimises the sum of artificial variables (infeasible if the
//!    minimum is positive);
//! 4. **phase 2** minimises (or maximises) the user objective with artificial
//!    columns barred from entering.
//!
//! Bland's rule is used for both the entering and the leaving variable, which
//! guarantees termination; an iteration cap protects against numerical
//! pathologies.

use crate::dense::DenseMatrix;
use crate::error::{LpError, LpResult};
use crate::problem::{ConstraintSense, LpProblem, Objective};

/// Numerical tolerance used by the pivoting rules.
const EPS: f64 = 1e-9;

/// An optimal solution to a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value (in the user's direction of optimisation).
    pub objective: f64,
    /// Optimal value of every variable, indexed by [`crate::problem::VariableId`].
    pub values: Vec<f64>,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
}

struct Tableau {
    /// Constraint rows plus two objective rows (phase 2 then phase 1) at the
    /// bottom. The last column is the right-hand side.
    matrix: DenseMatrix,
    rows: usize,
    cols: usize,
    /// Index of the basic variable of each constraint row.
    basis: Vec<usize>,
    /// First artificial column (artificials occupy `[artificial_start, cols)`).
    artificial_start: usize,
    iterations: usize,
}

impl Tableau {
    fn rhs_col(&self) -> usize {
        self.cols
    }
    fn phase2_row(&self) -> usize {
        self.rows
    }
    fn phase1_row(&self) -> usize {
        self.rows + 1
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_value = self.matrix.get(row, col);
        debug_assert!(pivot_value.abs() > EPS);
        self.matrix.scale_row(row, pivot_value);
        for r in 0..self.rows + 2 {
            if r == row {
                continue;
            }
            let factor = self.matrix.get(r, col);
            if factor != 0.0 {
                self.matrix.row_axpy(r, row, factor);
            }
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// Runs simplex iterations minimising the given objective row until
    /// optimality, unboundedness or the iteration cap.
    ///
    /// `allow` restricts which columns may enter the basis.
    fn minimise(
        &mut self,
        objective_row: usize,
        allow: impl Fn(usize) -> bool,
        max_iterations: usize,
    ) -> LpResult<()> {
        loop {
            if self.iterations > max_iterations {
                return Err(LpError::IterationLimit {
                    limit: max_iterations,
                });
            }
            // Bland's rule: smallest-index column with a negative reduced cost.
            let entering =
                (0..self.cols).find(|&j| allow(j) && self.matrix.get(objective_row, j) < -EPS);
            let Some(col) = entering else {
                return Ok(());
            };
            // Ratio test, Bland tie-break on the basic variable index.
            let mut best: Option<(usize, f64)> = None;
            for r in 0..self.rows {
                let a = self.matrix.get(r, col);
                if a > EPS {
                    let ratio = self.matrix.get(r, self.rhs_col()) / a;
                    let better = match best {
                        None => true,
                        Some((best_row, best_ratio)) => {
                            ratio < best_ratio - EPS
                                || (ratio < best_ratio + EPS
                                    && self.basis[r] < self.basis[best_row])
                        }
                    };
                    if better {
                        best = Some((r, ratio));
                    }
                }
            }
            let Some((row, _)) = best else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
    }
}

/// Internal description of the standardised problem.
struct Standardised {
    tableau: Tableau,
    /// For each user variable: (column index, lower-bound shift).
    user_columns: Vec<(usize, f64)>,
    /// Constant added to the objective by the lower-bound shifts.
    objective_shift: f64,
    /// `true` if the user problem is a maximisation.
    maximise: bool,
}

fn standardise(problem: &LpProblem) -> LpResult<Standardised> {
    problem.validate()?;
    let maximise = problem.objective() == Objective::Maximize;
    let n = problem.variable_count();

    // Shift variables so lower bounds are zero; collect upper-bound rows.
    let shifts: Vec<f64> = problem.variables().iter().map(|v| v.lower).collect();
    let mut upper_rows: Vec<(usize, f64)> = Vec::new();
    for (j, v) in problem.variables().iter().enumerate() {
        if let Some(u) = v.upper {
            upper_rows.push((j, u - v.lower));
        }
    }

    // Build the list of rows: user constraints then upper bounds.
    struct Row {
        coeffs: Vec<f64>,
        sense: ConstraintSense,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for c in problem.constraints() {
        let mut coeffs = vec![0.0; n];
        let mut rhs = c.rhs;
        for &(var, coeff) in &c.terms {
            coeffs[var.index()] += coeff;
        }
        for j in 0..n {
            rhs -= coeffs[j] * shifts[j];
        }
        rows.push(Row {
            coeffs,
            sense: c.sense,
            rhs,
        });
    }
    for &(j, bound) in &upper_rows {
        let mut coeffs = vec![0.0; n];
        coeffs[j] = 1.0;
        rows.push(Row {
            coeffs,
            sense: ConstraintSense::LessEqual,
            rhs: bound,
        });
    }

    // Flip rows with negative right-hand sides.
    for row in &mut rows {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for c in &mut row.coeffs {
                *c = -*c;
            }
            row.sense = match row.sense {
                ConstraintSense::LessEqual => ConstraintSense::GreaterEqual,
                ConstraintSense::GreaterEqual => ConstraintSense::LessEqual,
                ConstraintSense::Equal => ConstraintSense::Equal,
            };
        }
    }

    // Count auxiliary columns.
    let m = rows.len();
    let mut slack_count = 0usize;
    let mut artificial_count = 0usize;
    for row in &rows {
        match row.sense {
            ConstraintSense::LessEqual => slack_count += 1,
            ConstraintSense::GreaterEqual => {
                slack_count += 1;
                artificial_count += 1;
            }
            ConstraintSense::Equal => artificial_count += 1,
        }
    }
    let artificial_start = n + slack_count;
    let cols = artificial_start + artificial_count;

    // rows constraints + phase-2 objective row + phase-1 objective row; +1 rhs column.
    let mut matrix = DenseMatrix::zeros(m + 2, cols + 1);
    let mut basis = vec![0usize; m];
    let mut next_slack = n;
    let mut next_artificial = artificial_start;

    for (r, row) in rows.iter().enumerate() {
        for (j, &coeff) in row.coeffs.iter().enumerate() {
            matrix.set(r, j, coeff);
        }
        matrix.set(r, cols, row.rhs);
        match row.sense {
            ConstraintSense::LessEqual => {
                matrix.set(r, next_slack, 1.0);
                basis[r] = next_slack;
                next_slack += 1;
            }
            ConstraintSense::GreaterEqual => {
                matrix.set(r, next_slack, -1.0);
                next_slack += 1;
                matrix.set(r, next_artificial, 1.0);
                basis[r] = next_artificial;
                next_artificial += 1;
            }
            ConstraintSense::Equal => {
                matrix.set(r, next_artificial, 1.0);
                basis[r] = next_artificial;
                next_artificial += 1;
            }
        }
    }

    // Phase-2 objective row: minimise c'x (negate user objective if maximising).
    let sign = if maximise { -1.0 } else { 1.0 };
    let mut objective_shift = 0.0;
    for (j, v) in problem.variables().iter().enumerate() {
        matrix.set(m, j, sign * v.objective);
        objective_shift += v.objective * shifts[j];
    }

    // Phase-1 objective row: minimise the sum of artificials. Eliminate the
    // basic artificial columns so the row expresses reduced costs.
    for col in artificial_start..cols {
        matrix.set(m + 1, col, 1.0);
    }
    for (r, &b) in basis.iter().enumerate() {
        if b >= artificial_start {
            // phase1_row -= 1 * row_r
            matrix.row_axpy(m + 1, r, 1.0);
        }
    }

    Ok(Standardised {
        tableau: Tableau {
            matrix,
            rows: m,
            cols,
            basis,
            artificial_start,
            iterations: 0,
        },
        user_columns: (0..n).map(|j| (j, shifts[j])).collect(),
        objective_shift,
        maximise,
    })
}

/// Solves a linear program with the two-phase primal simplex method.
pub fn solve(problem: &LpProblem) -> LpResult<LpSolution> {
    let Standardised {
        mut tableau,
        user_columns,
        objective_shift,
        maximise,
    } = standardise(problem)?;
    let max_iterations = 2000 + 200 * (tableau.rows + tableau.cols);

    // Phase 1: drive the artificials to zero.
    if tableau.artificial_start < tableau.cols {
        let phase1 = tableau.phase1_row();
        tableau.minimise(phase1, |_| true, max_iterations)?;
        let infeasibility = -tableau.matrix.get(phase1, tableau.cols);
        if infeasibility > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Pivot remaining artificials (at zero level) out of the basis when
        // possible so they cannot disturb phase 2.
        for r in 0..tableau.rows {
            if tableau.basis[r] >= tableau.artificial_start {
                if let Some(col) =
                    (0..tableau.artificial_start).find(|&j| tableau.matrix.get(r, j).abs() > EPS)
                {
                    tableau.pivot(r, col);
                }
            }
        }
    }

    // Phase 2: optimise the user objective, artificials barred.
    let phase2 = tableau.phase2_row();
    let artificial_start = tableau.artificial_start;
    tableau.minimise(phase2, |j| j < artificial_start, max_iterations)?;

    // Extract the solution.
    let mut values = vec![0.0; user_columns.len()];
    for (r, &b) in tableau.basis.iter().enumerate() {
        if b < user_columns.len() {
            values[b] = tableau.matrix.get(r, tableau.cols);
        }
    }
    for (j, &(_, shift)) in user_columns.iter().enumerate() {
        values[j] += shift;
    }
    let raw_objective = -tableau.matrix.get(phase2, tableau.cols);
    // raw_objective is the optimal value of the *shifted, sign-adjusted*
    // objective; undo both transformations.
    let objective = if maximise {
        -raw_objective + objective_shift
    } else {
        raw_objective + objective_shift
    };

    Ok(LpSolution {
        objective,
        values,
        iterations: tableau.iterations,
    })
}

/// Outcome of [`resolve_tightened`]: the optimal solution and whether the
/// previous optimum was reused without any simplex work.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmSolution {
    /// The optimal solution of the (tightened) problem.
    pub solution: LpSolution,
    /// `true` when the previous optimum was still feasible and was returned
    /// as-is (zero pivots); `false` when a full re-solve ran.
    pub reused: bool,
}

/// Re-solves a *tightened* problem, warm-started from the previous optimum.
///
/// # Contract
///
/// `problem` must be a **pure tightening** of the problem `previous` solved:
/// the same variables, the same objective, and a feasible region that is a
/// subset of the previous one (bounds narrowed, `≤` right-hand sides
/// lowered / `≥` raised, constraints added). Under that contract the warm
/// start is exact, not heuristic: when `previous.values` still satisfies the
/// tightened problem, it remains optimal — every tightened-feasible point
/// was feasible before, so nothing can beat the previous optimum — and it is
/// returned without any simplex work. Otherwise the problem is re-solved
/// from scratch.
///
/// Callers that tighten in steps (branch-and-bound walking down a search
/// path) get the common case — the branched variable was already integral /
/// the correction already slack — for the price of one feasibility scan.
pub fn resolve_tightened(problem: &LpProblem, previous: &LpSolution) -> LpResult<WarmSolution> {
    if previous.values.len() == problem.variable_count()
        && problem.is_feasible(&previous.values, EPS)
    {
        return Ok(WarmSolution {
            solution: LpSolution {
                objective: problem.objective_value(&previous.values),
                values: previous.values.clone(),
                iterations: 0,
            },
            reused: true,
        });
    }
    Ok(WarmSolution {
        solution: solve(problem)?,
        reused: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintSense as CS, LpProblem, Objective};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximisation() {
        // maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 5.0);
        lp.add_constraint(vec![(x, 1.0)], CS::LessEqual, 4.0);
        lp.add_constraint(vec![(y, 2.0)], CS::LessEqual, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], CS::LessEqual, 18.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 36.0);
        assert_close(sol.values[x.index()], 2.0);
        assert_close(sol.values[y.index()], 6.0);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn minimisation_with_ge_constraints() {
        // minimize 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], CS::GreaterEqual, 10.0);
        lp.add_constraint(vec![(x, 1.0)], CS::GreaterEqual, 2.0);
        lp.add_constraint(vec![(y, 1.0)], CS::GreaterEqual, 3.0);
        let sol = solve(&lp).unwrap();
        // Put as much as possible on the cheaper variable x: x=7, y=3.
        assert_close(sol.objective, 23.0);
        assert_close(sol.values[x.index()], 7.0);
        assert_close(sol.values[y.index()], 3.0);
    }

    #[test]
    fn equality_constraints() {
        // minimize x + 2y s.t. x + y = 5, x - y = 1  -> x=3, y=2, obj=7.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], CS::Equal, 5.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], CS::Equal, 1.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 7.0);
        assert_close(sol.values[x.index()], 3.0);
        assert_close(sol.values[y.index()], 2.0);
    }

    #[test]
    fn infeasible_problem_is_detected() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x");
        lp.add_constraint(vec![(x, 1.0)], CS::LessEqual, 1.0);
        lp.add_constraint(vec![(x, 1.0)], CS::GreaterEqual, 2.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_problem_is_detected() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], CS::GreaterEqual, 1.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bounded_variables_and_shifts() {
        // maximize x + y with 1 <= x <= 3, 2 <= y <= 4, x + y <= 6.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_bounded_variable("x", 1.0, 3.0);
        let y = lp.add_bounded_variable("y", 2.0, 4.0);
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], CS::LessEqual, 6.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 6.0);
        assert!(sol.values[x.index()] >= 1.0 - 1e-9 && sol.values[x.index()] <= 3.0 + 1e-9);
        assert!(sol.values[y.index()] >= 2.0 - 1e-9 && sol.values[y.index()] <= 4.0 + 1e-9);
    }

    #[test]
    fn negative_rhs_is_handled() {
        // minimize x s.t. -x <= -3  (i.e. x >= 3).
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, -1.0)], CS::LessEqual, -3.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 3.0);
        assert_close(sol.values[x.index()], 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; Bland's rule must terminate.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x1 = lp.add_variable("x1");
        let x2 = lp.add_variable("x2");
        let x3 = lp.add_variable("x3");
        lp.set_objective_coefficient(x1, 10.0);
        lp.set_objective_coefficient(x2, -57.0);
        lp.set_objective_coefficient(x3, -9.0);
        lp.add_constraint(vec![(x1, 0.5), (x2, -5.5), (x3, -2.5)], CS::LessEqual, 0.0);
        lp.add_constraint(vec![(x1, 0.5), (x2, -1.5), (x3, -0.5)], CS::LessEqual, 0.0);
        lp.add_constraint(vec![(x1, 1.0)], CS::LessEqual, 1.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        // maximize x with x + x <= 4 -> x = 2.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0), (x, 1.0)], CS::LessEqual, 4.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.values[x.index()], 2.0);
    }

    #[test]
    fn warm_resolve_reuses_a_still_feasible_optimum() {
        // minimize 2x + 3y s.t. x + y >= 10, x <= 15  ->  x=10, y=0.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 2.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], CS::GreaterEqual, 10.0);
        let cap = lp.add_constraint(vec![(x, 1.0)], CS::LessEqual, 15.0);
        let first = solve(&lp).unwrap();
        assert_close(first.objective, 20.0);

        // Tighten a slack constraint: the optimum survives and is reused.
        lp.set_constraint_rhs(cap, 12.0);
        let warm = resolve_tightened(&lp, &first).unwrap();
        assert!(warm.reused);
        assert_eq!(warm.solution.iterations, 0);
        assert_close(warm.solution.objective, 20.0);
        assert_eq!(warm.solution.values, first.values);

        // Tighten past the optimum: a full re-solve runs and both paths
        // agree with solving from scratch.
        lp.set_constraint_rhs(cap, 6.0);
        let warm = resolve_tightened(&lp, &first).unwrap();
        assert!(!warm.reused);
        let cold = solve(&lp).unwrap();
        assert_close(warm.solution.objective, cold.objective);
        assert_close(warm.solution.objective, 24.0); // x=6, y=4
    }

    #[test]
    fn warm_resolve_rejects_dimension_mismatches_with_a_full_solve() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], CS::GreaterEqual, 2.0);
        let stale = LpSolution {
            objective: 0.0,
            values: vec![0.0, 0.0],
            iterations: 0,
        };
        let warm = resolve_tightened(&lp, &stale).unwrap();
        assert!(!warm.reused);
        assert_close(warm.solution.objective, 2.0);
    }

    #[test]
    fn objective_constant_from_lower_bounds() {
        // minimize x with x >= 5 (as a bound, not a constraint).
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_bounded_variable("x", 5.0, 100.0);
        lp.set_objective_coefficient(x, 2.0);
        // A harmless constraint so the tableau is non-empty.
        lp.add_constraint(vec![(x, 1.0)], CS::LessEqual, 50.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 10.0);
        assert_close(sol.values[x.index()], 5.0);
    }
}
