//! Bottleneck assignment: minimise the *largest* edge cost of a perfect
//! assignment.
//!
//! The paper's reference solution for one-to-one mappings with task-attached
//! failures (Figure 9) minimises the maximum machine period, and with one task
//! per machine the period of a machine is exactly the cost of its single edge.
//! The problem is therefore a bottleneck assignment, solved here by binary
//! searching the sorted edge costs and testing perfect-matchability with
//! Hopcroft–Karp.

use crate::cost::CostMatrix;
use crate::hopcroft_karp::{maximum_matching, BipartiteGraph};

/// Result of a bottleneck assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckResult {
    /// `row_to_col[r]` is the column assigned to row `r`.
    pub row_to_col: Vec<usize>,
    /// The value of the largest edge cost used.
    pub bottleneck: f64,
}

/// Solves the bottleneck assignment problem for a `rows × cols` cost matrix
/// with `rows ≤ cols`: every row is assigned a distinct column so that the
/// maximum cost of a chosen edge is minimal.
///
/// Returns `None` if `rows > cols` or if no finite-cost assignment exists.
pub fn bottleneck_assignment(costs: &CostMatrix) -> Option<BottleneckResult> {
    let n = costs.rows();
    let m = costs.cols();
    if n == 0 {
        return Some(BottleneckResult {
            row_to_col: Vec::new(),
            bottleneck: f64::NEG_INFINITY,
        });
    }
    if n > m {
        return None;
    }

    let thresholds = costs.sorted_distinct_costs();
    if thresholds.is_empty() {
        return None;
    }

    let feasible = |threshold: f64| -> Option<Vec<usize>> {
        let mut graph = BipartiteGraph::new(n, m);
        for r in 0..n {
            for c in 0..m {
                if costs.get(r, c) <= threshold {
                    graph.add_edge(r, c);
                }
            }
        }
        let matching = maximum_matching(&graph);
        if matching.is_left_perfect() {
            Some(matching.pair_left.iter().map(|p| p.unwrap()).collect())
        } else {
            None
        }
    };

    // Binary search the smallest threshold index that allows a perfect matching.
    let mut lo = 0usize;
    let mut hi = thresholds.len() - 1;
    feasible(thresholds[hi])?;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(thresholds[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let bottleneck = thresholds[lo];
    let row_to_col = feasible(bottleneck).expect("threshold was verified feasible");
    Some(BottleneckResult {
        row_to_col,
        bottleneck,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_bottleneck(costs: &CostMatrix) -> f64 {
        fn recurse(costs: &CostMatrix, row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == costs.rows() {
                if acc < *best {
                    *best = acc;
                }
                return;
            }
            for c in 0..costs.cols() {
                if !used[c] {
                    used[c] = true;
                    recurse(costs, row + 1, used, acc.max(costs.get(row, c)), best);
                    used[c] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        recurse(
            costs,
            0,
            &mut vec![false; costs.cols()],
            f64::NEG_INFINITY,
            &mut best,
        );
        best
    }

    #[test]
    fn simple_instance() {
        let costs = CostMatrix::from_rows(vec![
            vec![5.0, 9.0, 1.0],
            vec![10.0, 3.0, 2.0],
            vec![8.0, 7.0, 4.0],
        ]);
        let result = bottleneck_assignment(&costs).unwrap();
        // Optimal bottleneck is 5: (0->0:5, 1->1:3, 2->2:4).
        assert_eq!(result.bottleneck, 5.0);
        assert_eq!(result.row_to_col, vec![0, 1, 2]);
        assert_eq!(costs.max_cost(&result.row_to_col), 5.0);
    }

    #[test]
    fn rectangular_instance_uses_spare_columns() {
        let costs = CostMatrix::from_rows(vec![vec![100.0, 1.0, 50.0], vec![100.0, 100.0, 2.0]]);
        let result = bottleneck_assignment(&costs).unwrap();
        assert_eq!(result.bottleneck, 2.0);
        assert_eq!(result.row_to_col, vec![1, 2]);
    }

    #[test]
    fn infeasible_shapes() {
        let costs = CostMatrix::from_rows(vec![vec![1.0], vec![1.0]]);
        assert!(bottleneck_assignment(&costs).is_none());
        let inf = f64::INFINITY;
        let costs = CostMatrix::from_rows(vec![vec![inf, inf], vec![1.0, 1.0]]);
        assert!(bottleneck_assignment(&costs).is_none());
    }

    #[test]
    fn empty_matrix() {
        let costs = CostMatrix::from_rows(vec![]);
        let result = bottleneck_assignment(&costs).unwrap();
        assert!(result.row_to_col.is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut state = 0xDEADBEEFCAFEBABEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 97) as f64
        };
        for &(rows, cols) in &[(3, 3), (4, 4), (4, 6), (5, 5), (2, 7)] {
            let costs = CostMatrix::from_fn(rows, cols, |_, _| next());
            let result = bottleneck_assignment(&costs).unwrap();
            let best = brute_force_bottleneck(&costs);
            assert!(
                (result.bottleneck - best).abs() < 1e-9,
                "bottleneck {} != brute force {best} on {rows}x{cols}",
                result.bottleneck
            );
            // Assignment must be injective and consistent with the bottleneck.
            let mut seen = vec![false; cols];
            for &c in &result.row_to_col {
                assert!(!seen[c]);
                seen[c] = true;
            }
            assert!(costs.max_cost(&result.row_to_col) <= result.bottleneck + 1e-9);
        }
    }

    #[test]
    fn bottleneck_is_no_larger_than_min_sum_assignment_max_edge() {
        // Sanity link with the Hungarian algorithm: the bottleneck optimum is
        // never worse than the largest edge of the min-sum assignment.
        let costs = CostMatrix::from_rows(vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ]);
        let sum_optimal = crate::hungarian::hungarian(&costs).unwrap();
        let bn = bottleneck_assignment(&costs).unwrap();
        assert!(bn.bottleneck <= costs.max_cost(&sum_optimal.row_to_col) + 1e-12);
    }
}
