//! Dense rectangular cost matrices for assignment problems.

/// A dense `rows × cols` cost matrix (rows = items to assign, cols = slots).
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Builds a matrix from nested vectors; every row must have the same length.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend(row);
        }
        CostMatrix {
            rows: n,
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        CostMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cost of assigning row `r` to column `c`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Total cost of an assignment given as `assignment[row] = col`.
    pub fn total_cost(&self, assignment: &[usize]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .map(|(r, &c)| self.get(r, c))
            .sum()
    }

    /// Largest single edge cost of an assignment given as `assignment[row] = col`.
    pub fn max_cost(&self, assignment: &[usize]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .map(|(r, &c)| self.get(r, c))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// All distinct finite cost values, sorted ascending (used by the
    /// bottleneck binary search).
    pub fn sorted_distinct_costs(&self) -> Vec<f64> {
        let mut values: Vec<f64> = self
            .data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        values.dedup();
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = CostMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        let f = CostMatrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(f.get(1, 2), 5.0);
        assert_eq!(f.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_panic() {
        CostMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn assignment_costs() {
        let m = CostMatrix::from_rows(vec![vec![1.0, 10.0], vec![10.0, 2.0]]);
        assert_eq!(m.total_cost(&[0, 1]), 3.0);
        assert_eq!(m.total_cost(&[1, 0]), 20.0);
        assert_eq!(m.max_cost(&[0, 1]), 2.0);
        assert_eq!(m.max_cost(&[1, 0]), 10.0);
    }

    #[test]
    fn sorted_distinct_costs_deduplicates() {
        let m = CostMatrix::from_rows(vec![vec![3.0, 1.0], vec![1.0, f64::INFINITY]]);
        assert_eq!(m.sorted_distinct_costs(), vec![1.0, 3.0]);
    }
}
