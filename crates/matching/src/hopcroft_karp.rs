//! Hopcroft–Karp maximum cardinality matching for bipartite graphs.
//!
//! Runs in `O(E · √V)`; used by the bottleneck assignment solver to test
//! whether a perfect matching exists among the edges below a cost threshold.

use std::collections::VecDeque;

/// A bipartite graph given by adjacency lists from the left part to the right
/// part.
#[derive(Debug, Clone, PartialEq)]
pub struct BipartiteGraph {
    left: usize,
    right: usize,
    adjacency: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// Creates a graph with `left` left vertices and `right` right vertices
    /// and no edges.
    pub fn new(left: usize, right: usize) -> Self {
        BipartiteGraph {
            left,
            right,
            adjacency: vec![Vec::new(); left],
        }
    }

    /// Adds an edge between left vertex `l` and right vertex `r`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.left, "left vertex {l} out of range");
        assert!(r < self.right, "right vertex {r} out of range");
        self.adjacency[l].push(r);
    }

    /// Number of left vertices.
    #[inline]
    pub fn left_count(&self) -> usize {
        self.left
    }

    /// Number of right vertices.
    #[inline]
    pub fn right_count(&self) -> usize {
        self.right
    }

    /// Neighbours of a left vertex.
    #[inline]
    pub fn neighbours(&self, l: usize) -> &[usize] {
        &self.adjacency[l]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }
}

/// A matching in a bipartite graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// `pair_left[l]` is the right vertex matched to `l`, if any.
    pub pair_left: Vec<Option<usize>>,
    /// `pair_right[r]` is the left vertex matched to `r`, if any.
    pub pair_right: Vec<Option<usize>>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.pair_left.iter().filter(|p| p.is_some()).count()
    }

    /// `true` if every left vertex is matched.
    pub fn is_left_perfect(&self) -> bool {
        self.pair_left.iter().all(Option::is_some)
    }
}

const NIL: usize = usize::MAX;

/// Computes a maximum-cardinality matching with the Hopcroft–Karp algorithm.
pub fn maximum_matching(graph: &BipartiteGraph) -> Matching {
    let n = graph.left_count();
    let m = graph.right_count();
    let mut pair_left = vec![NIL; n];
    let mut pair_right = vec![NIL; m];
    let mut dist = vec![0usize; n + 1];

    // BFS builds the layered graph from free left vertices; returns true if an
    // augmenting path exists.
    fn bfs(
        graph: &BipartiteGraph,
        pair_left: &[usize],
        pair_right: &[usize],
        dist: &mut [usize],
    ) -> bool {
        let n = graph.left_count();
        let infinite = usize::MAX;
        let mut queue = VecDeque::new();
        for l in 0..n {
            if pair_left[l] == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = infinite;
            }
        }
        dist[n] = infinite; // distance of the virtual NIL vertex
        while let Some(l) = queue.pop_front() {
            if dist[l] < dist[n] {
                for &r in graph.neighbours(l) {
                    let next = pair_right[r];
                    let next_index = if next == NIL { n } else { next };
                    if dist[next_index] == infinite {
                        dist[next_index] = dist[l] + 1;
                        if next != NIL {
                            queue.push_back(next);
                        }
                    }
                }
            }
        }
        dist[n] != infinite
    }

    fn dfs(
        graph: &BipartiteGraph,
        l: usize,
        pair_left: &mut [usize],
        pair_right: &mut [usize],
        dist: &mut [usize],
    ) -> bool {
        let n = graph.left_count();
        for &r in graph.neighbours(l) {
            let next = pair_right[r];
            let next_index = if next == NIL { n } else { next };
            if dist[next_index] == dist[l] + 1
                && (next == NIL || dfs(graph, next, pair_left, pair_right, dist))
            {
                pair_left[l] = r;
                pair_right[r] = l;
                return true;
            }
        }
        dist[l] = usize::MAX;
        false
    }

    while bfs(graph, &pair_left, &pair_right, &mut dist) {
        for l in 0..n {
            if pair_left[l] == NIL {
                dfs(graph, l, &mut pair_left, &mut pair_right, &mut dist);
            }
        }
    }

    Matching {
        pair_left: pair_left
            .iter()
            .map(|&p| if p == NIL { None } else { Some(p) })
            .collect(),
        pair_right: pair_right
            .iter()
            .map(|&p| if p == NIL { None } else { Some(p) })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_complete_graph() {
        let mut g = BipartiteGraph::new(3, 3);
        for l in 0..3 {
            for r in 0..3 {
                g.add_edge(l, r);
            }
        }
        assert_eq!(g.edge_count(), 9);
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 3);
        assert!(m.is_left_perfect());
        // The matching is consistent.
        for (l, &r) in m.pair_left.iter().enumerate() {
            let r = r.unwrap();
            assert_eq!(m.pair_right[r], Some(l));
        }
    }

    #[test]
    fn partial_matching_when_edges_are_scarce() {
        // Two left vertices both only connect to right vertex 0.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 1);
        assert!(!m.is_left_perfect());
    }

    #[test]
    fn empty_graph_has_empty_matching() {
        let g = BipartiteGraph::new(3, 2);
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 0);
        let g = BipartiteGraph::new(0, 0);
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn augmenting_paths_are_found() {
        // A graph where a greedy matching gets stuck but HK finds 3 pairs:
        // l0: {r0, r1}, l1: {r0}, l2: {r1, r2}.
        let mut g = BipartiteGraph::new(3, 3);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 1);
        g.add_edge(2, 2);
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 3);
    }

    #[test]
    fn unbalanced_sides() {
        let mut g = BipartiteGraph::new(2, 5);
        g.add_edge(0, 4);
        g.add_edge(1, 4);
        g.add_edge(1, 0);
        let m = maximum_matching(&g);
        assert_eq!(m.size(), 2);
        assert!(m.is_left_perfect());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 3);
    }
}
