//! Hungarian algorithm (Kuhn–Munkres) for minimum-cost assignment.
//!
//! This is the potentials / shortest-augmenting-path formulation, running in
//! `O(n²·m)` for `n` rows assigned to `m ≥ n` columns. Forbidden assignments
//! may be encoded with `f64::INFINITY` as long as a finite-cost perfect
//! assignment of the rows exists.
//!
//! The paper uses this algorithm (citing Kuhn 1955) to compute the optimal
//! one-to-one mapping of a linear chain onto homogeneous machines, with edge
//! costs `−log(1 − f_{j,u})` (Theorem 1).

use crate::cost::CostMatrix;

/// The result of a minimum-cost assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `row_to_col[r]` is the column assigned to row `r`.
    pub row_to_col: Vec<usize>,
    /// Total cost of the assignment.
    pub total_cost: f64,
}

impl Assignment {
    /// Inverse view: for each column, the row assigned to it (if any).
    pub fn col_to_row(&self, cols: usize) -> Vec<Option<usize>> {
        let mut inverse = vec![None; cols];
        for (r, &c) in self.row_to_col.iter().enumerate() {
            inverse[c] = Some(r);
        }
        inverse
    }
}

/// Solves the rectangular assignment problem: assign every row of `costs` to a
/// distinct column minimising the total cost.
///
/// Returns `None` if there are more rows than columns (no perfect assignment
/// of the rows exists) or if no finite-cost assignment exists.
pub fn hungarian(costs: &CostMatrix) -> Option<Assignment> {
    let n = costs.rows();
    let m = costs.cols();
    if n == 0 {
        return Some(Assignment {
            row_to_col: Vec::new(),
            total_cost: 0.0,
        });
    }
    if n > m {
        return None;
    }

    // 1-based arrays, following the classical presentation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = costs.get(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            if !delta.is_finite() {
                // No augmenting path with finite cost: the instance has no
                // finite-cost perfect assignment.
                return None;
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            row_to_col[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(row_to_col.iter().all(|&c| c != usize::MAX));
    let total_cost = costs.total_cost(&row_to_col);
    if !total_cost.is_finite() {
        return None;
    }
    Some(Assignment {
        row_to_col,
        total_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_min(costs: &CostMatrix) -> f64 {
        // Exhaustive search over injective assignments (small matrices only).
        fn recurse(costs: &CostMatrix, row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == costs.rows() {
                if acc < *best {
                    *best = acc;
                }
                return;
            }
            for c in 0..costs.cols() {
                if !used[c] {
                    used[c] = true;
                    recurse(costs, row + 1, used, acc + costs.get(row, c), best);
                    used[c] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        recurse(costs, 0, &mut vec![false; costs.cols()], 0.0, &mut best);
        best
    }

    #[test]
    fn square_textbook_instance() {
        let costs = CostMatrix::from_rows(vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ]);
        let result = hungarian(&costs).unwrap();
        assert_eq!(result.total_cost, 5.0);
        // Optimal: row0->col1 (1), row1->col0 (2), row2->col2 (2).
        assert_eq!(result.row_to_col, vec![1, 0, 2]);
        let inverse = result.col_to_row(3);
        assert_eq!(inverse, vec![Some(1), Some(0), Some(2)]);
    }

    #[test]
    fn rectangular_instances_pick_best_columns() {
        let costs =
            CostMatrix::from_rows(vec![vec![10.0, 2.0, 8.0, 5.0], vec![7.0, 9.0, 1.0, 4.0]]);
        let result = hungarian(&costs).unwrap();
        assert_eq!(result.total_cost, 3.0);
        assert_eq!(result.row_to_col, vec![1, 2]);
    }

    #[test]
    fn more_rows_than_cols_is_rejected() {
        let costs = CostMatrix::from_rows(vec![vec![1.0], vec![2.0]]);
        assert!(hungarian(&costs).is_none());
    }

    #[test]
    fn empty_matrix_has_zero_cost() {
        let costs = CostMatrix::from_rows(vec![]);
        let result = hungarian(&costs).unwrap();
        assert!(result.row_to_col.is_empty());
        assert_eq!(result.total_cost, 0.0);
    }

    #[test]
    fn forbidden_edges_are_avoided_when_possible() {
        let inf = f64::INFINITY;
        let costs = CostMatrix::from_rows(vec![vec![inf, 1.0], vec![2.0, inf]]);
        let result = hungarian(&costs).unwrap();
        assert_eq!(result.row_to_col, vec![1, 0]);
        assert_eq!(result.total_cost, 3.0);
    }

    #[test]
    fn infeasible_forbidden_edges_return_none() {
        let inf = f64::INFINITY;
        let costs = CostMatrix::from_rows(vec![vec![inf, inf], vec![1.0, 1.0]]);
        assert!(hungarian(&costs).is_none());
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        // Deterministic pseudo-random values (no external RNG needed here).
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        for &(rows, cols) in &[(3, 3), (4, 5), (5, 5), (2, 6), (6, 6)] {
            let costs = CostMatrix::from_fn(rows, cols, |_, _| next());
            let result = hungarian(&costs).unwrap();
            let best = brute_force_min(&costs);
            assert!(
                (result.total_cost - best).abs() < 1e-9,
                "hungarian {} != brute force {best} on {rows}x{cols}",
                result.total_cost
            );
            // The assignment must be injective.
            let mut seen = vec![false; cols];
            for &c in &result.row_to_col {
                assert!(!seen[c]);
                seen[c] = true;
            }
        }
    }
}
