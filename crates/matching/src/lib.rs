//! # mf-matching — bipartite matching substrate
//!
//! The one-to-one mapping results of the paper reduce to assignment problems
//! on bipartite graphs (tasks on one side, machines on the other):
//!
//! * Theorem 1 turns the optimal one-to-one mapping of a linear chain on
//!   homogeneous machines into a **minimum-weight perfect matching** with edge
//!   costs `−log(1 − f_{j,u})`, solved here by the [`hungarian`] algorithm;
//! * the optimal one-to-one mapping used as the reference in Figure 9
//!   (failures attached to tasks only, `f_{i,u} = f_i`) is a **bottleneck
//!   assignment** — minimise the largest `xᵢ · w_{i,u}` over the matching —
//!   solved by binary search over edge weights with a [`hopcroft_karp`]
//!   feasibility check.
//!
//! The algorithms are generic over dense cost matrices and usable outside the
//! micro-factory context.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bottleneck;
pub mod cost;
pub mod hopcroft_karp;
pub mod hungarian;

pub use bottleneck::{bottleneck_assignment, BottleneckResult};
pub use cost::CostMatrix;
pub use hopcroft_karp::{maximum_matching, BipartiteGraph, Matching};
pub use hungarian::{hungarian, Assignment};
