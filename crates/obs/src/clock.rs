//! The injectable [`Clock`] trait.
//!
//! Everything in `mf-obs` that measures time takes a `&dyn Clock` (or an
//! `Arc<dyn Clock>`) instead of calling [`std::time::Instant::now`]
//! directly. Production wiring injects [`MonotonicClock`]; tests and
//! golden-transcript replays inject [`ManualClock`], whose readings are
//! fully scripted, so any output that embeds durations is byte-identical
//! run to run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone nanosecond clock. Readings are relative to an arbitrary
/// per-clock origin — only differences between readings are meaningful.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin. Must never decrease.
    fn now_ns(&self) -> u64;
}

/// The production clock: wall-clock-independent monotonic time anchored at
/// the moment the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturates after ~584 years of process uptime; acceptable.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A scripted clock for tests: starts at a fixed reading and advances only
/// when told to ([`advance`](ManualClock::advance)) or by a fixed step per
/// reading ([`ticking`](ManualClock::ticking)). Timing-bearing test output
/// is therefore deterministic.
#[derive(Debug)]
pub struct ManualClock {
    now: AtomicU64,
    step: u64,
}

impl ManualClock {
    /// A clock frozen at `start_ns` until advanced explicitly.
    pub fn new(start_ns: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(start_ns),
            step: 0,
        }
    }

    /// A clock that starts at 0 and advances by `step_ns` on every reading,
    /// so consecutive readings differ by exactly `step_ns` — handy for
    /// forcing every measured duration into a known histogram bucket.
    pub fn ticking(step_ns: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(0),
            step: step_ns,
        }
    }

    /// Moves the clock forward by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now.fetch_add(delta_ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_decreases() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_frozen_until_advanced() {
        let clock = ManualClock::new(7);
        assert_eq!(clock.now_ns(), 7);
        assert_eq!(clock.now_ns(), 7);
        clock.advance(13);
        assert_eq!(clock.now_ns(), 20);
    }

    #[test]
    fn ticking_clock_steps_per_reading() {
        let clock = ManualClock::ticking(1_000);
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 1_000);
        assert_eq!(clock.now_ns(), 2_000);
    }
}
