//! Fixed-bucket log2 latency histograms.
//!
//! Bucket `0` holds the value `0`; bucket `i` (1 ≤ i ≤ 64) holds values in
//! `[2^(i-1), 2^i - 1]` — i.e. `bucket_of(v) = 64 - v.leading_zeros()` for
//! `v > 0`. The scheme is chosen for the serving tier's needs:
//!
//! * **deterministic** — a value always lands in the same bucket, no
//!   floating-point boundaries;
//! * **mergeable** — the router sums worker histograms bucket-wise, and the
//!   sum is exactly the histogram of the merged stream;
//! * **quantile-derivable** — p50/p90/p99 are reported as the upper bound
//!   of the bucket containing that rank (clamped to the observed max), so
//!   quantile estimates are monotone in the quantile by construction.
//!
//! Recording is lock-free ([`Histogram`] is a bank of relaxed atomics);
//! reading goes through an immutable [`HistogramSnapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: one for `0` plus one per bit position of `u64`.
pub const BUCKET_COUNT: usize = 65;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_of(value_ns: u64) -> usize {
    if value_ns == 0 {
        0
    } else {
        (64 - value_ns.leading_zeros()) as usize
    }
}

/// The largest value bucket `index` can hold (its inclusive upper bound).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A lock-free log2 histogram of `u64` samples (nanoseconds, by
/// convention). Cheap enough to sit on the server's request hot path:
/// one relaxed `fetch_add` per counter plus a `fetch_max`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value_ns: u64) {
        self.buckets[bucket_of(value_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value_ns, Ordering::Relaxed);
        self.max.fetch_max(value_ns, Ordering::Relaxed);
    }

    /// An immutable copy of the current state. Concurrent recorders may
    /// land between field reads; per-field values are each correct for
    /// some recent instant, which is all exposition needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKET_COUNT];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An immutable view of a [`Histogram`]: per-bucket counts plus the
/// count/sum/max scalars. Snapshots merge bucket-wise, which is how the
/// router aggregates worker histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping at `u64::MAX`, like the counters the
    /// serving tier already exposes).
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Largest sample observed (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Folds `other` into `self` bucket-wise. Merging snapshots of two
    /// streams yields exactly the snapshot of the interleaved stream.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.wrapping_add(*theirs);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The estimated `q`-quantile (`0.0 < q <= 1.0`): the upper bound of
    /// the bucket containing the sample of rank `ceil(q * count)`, clamped
    /// to the observed max. Returns 0 for an empty histogram. Monotone in
    /// `q` by construction.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(bucket);
            if cumulative >= rank {
                return bucket_upper_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// The non-empty buckets in ascending index order, as
    /// `(bucket index, sample count)` pairs — the deterministic sparse
    /// exposition used by `mf-stats v1` and `mf-trace v1`.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count != 0)
            .map(|(index, &count)| (index, count))
            .collect()
    }

    /// Rebuilds a snapshot from its sparse exposition plus scalars, for
    /// parsers of the serialized forms. Bucket indices must be in range;
    /// out-of-range entries are rejected with `None`.
    pub fn from_parts(
        nonzero_buckets: &[(usize, u64)],
        count: u64,
        sum_ns: u64,
        max_ns: u64,
    ) -> Option<Self> {
        let mut snapshot = HistogramSnapshot::empty();
        for &(index, bucket_count) in nonzero_buckets {
            if index >= BUCKET_COUNT {
                return None;
            }
            snapshot.buckets[index] = bucket_count;
        }
        snapshot.count = count;
        snapshot.sum = sum_ns;
        snapshot.max = max_ns;
        Some(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_deterministic() {
        // Exhaustive around every power-of-two boundary: 2^i - 1 stays in
        // bucket i, 2^i opens bucket i + 1.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        for bit in 1..64usize {
            let boundary = 1u64 << bit;
            assert_eq!(bucket_of(boundary - 1), bit, "below boundary 2^{bit}");
            assert_eq!(bucket_of(boundary), bit + 1, "at boundary 2^{bit}");
        }
        assert_eq!(bucket_of(u64::MAX), 64);
        for index in 0..BUCKET_COUNT {
            assert_eq!(
                bucket_of(bucket_upper_bound(index)),
                index,
                "upper bound of bucket {index} must land in it"
            );
        }
    }

    #[test]
    fn merge_equals_merged_stream() {
        let left_samples = [0u64, 1, 2, 3, 500, 1_023, 1_024, u64::MAX];
        let right_samples = [7u64, 7, 7, 99_999, 1 << 40];

        let left = Histogram::new();
        for &sample in &left_samples {
            left.record(sample);
        }
        let right = Histogram::new();
        for &sample in &right_samples {
            right.record(sample);
        }
        let combined = Histogram::new();
        for &sample in left_samples.iter().chain(right_samples.iter()) {
            combined.record(sample);
        }

        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn quantiles_are_monotone_and_capped_at_max() {
        let histogram = Histogram::new();
        for sample in [10u64, 20, 30, 1_000, 2_000, 4_000, 100_000] {
            histogram.record(sample);
        }
        let snapshot = histogram.snapshot();
        let p50 = snapshot.p50_ns();
        let p90 = snapshot.p90_ns();
        let p99 = snapshot.p99_ns();
        assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        assert!(p99 <= snapshot.max_ns());
        // A single-sample histogram reports that sample for every quantile.
        let single = Histogram::new();
        single.record(12_345);
        let snapshot = single.snapshot();
        assert_eq!(snapshot.p50_ns(), 12_345);
        assert_eq!(snapshot.p99_ns(), 12_345);
    }

    #[test]
    fn empty_histogram_exposition_is_stable() {
        let snapshot = Histogram::new().snapshot();
        assert_eq!(snapshot, HistogramSnapshot::empty());
        assert_eq!(snapshot.count(), 0);
        assert_eq!(snapshot.sum_ns(), 0);
        assert_eq!(snapshot.max_ns(), 0);
        assert_eq!(snapshot.p50_ns(), 0);
        assert_eq!(snapshot.p99_ns(), 0);
        assert!(snapshot.nonzero_buckets().is_empty());
    }

    #[test]
    fn sparse_round_trip_rebuilds_the_snapshot() {
        let histogram = Histogram::new();
        for sample in [0u64, 3, 900, 900, 1 << 50] {
            histogram.record(sample);
        }
        let snapshot = histogram.snapshot();
        let rebuilt = HistogramSnapshot::from_parts(
            &snapshot.nonzero_buckets(),
            snapshot.count(),
            snapshot.sum_ns(),
            snapshot.max_ns(),
        )
        .unwrap();
        assert_eq!(rebuilt, snapshot);
        assert!(HistogramSnapshot::from_parts(&[(BUCKET_COUNT, 1)], 1, 1, 1).is_none());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let histogram = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let histogram = Arc::clone(&histogram);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        histogram.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        assert_eq!(histogram.snapshot().count(), 4_000);
    }
}
