//! `mf-obs` — observability primitives for the micro-factory workspace.
//!
//! The serving tier (`mf-server`) exposes lifetime `u64` counters through
//! `stats` v1/v2, but counters cannot answer "how slow was the p99
//! `solve`?", "what did that solve *do*?", or "which portfolio strategy
//! found the incumbent?". This crate supplies the missing layer, std-only
//! and dependency-free so every workspace crate can use it without cycles:
//!
//! * [`clock`] — the injectable [`Clock`](clock::Clock) trait.
//!   Production code uses [`MonotonicClock`](clock::MonotonicClock);
//!   tests inject [`ManualClock`](clock::ManualClock) so latency-bearing
//!   output stays byte-identical run to run.
//! * [`hist`] — fixed-bucket log2 latency [`Histogram`](hist::Histogram)s:
//!   lock-free recording, mergeable bucket-wise across worker engines,
//!   deterministic exposition, p50/p90/p99/max derivable from a snapshot.
//! * [`registry`] — a [`Registry`](registry::Registry) of named counters,
//!   gauges, and histograms with deterministic (sorted) exposition order.
//! * [`span`] — scoped RAII timers ([`ScopedSpan`](span::ScopedSpan), the
//!   [`span!`](crate::span!) macro) reporting to a [`SpanSink`](span::SpanSink).
//! * [`trace`] — the append-only `mf-trace v1` event log, styled after
//!   `mf-report v1`: versioned header, one event per line, counted `end`
//!   footer, write→parse→write byte-identity.
//! * [`progress`] — solver progress events
//!   ([`ProgressEvent`](progress::ProgressEvent)) and the sampling-capped
//!   [`SamplingSink`](progress::SamplingSink) the search engine and the
//!   portfolio emit through, so a traced solve shows when each strategy
//!   found each incumbent.

pub mod clock;
pub mod hist;
pub mod progress;
pub mod registry;
pub mod span;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use hist::{Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use progress::{NullSink, ProgressEvent, ProgressSink, SamplingSink};
pub use registry::{Counter, Exposition, Gauge, Registry};
pub use span::{ScopedSpan, SpanSink, SpanTimer};
pub use trace::{
    events_from_text, events_to_text, SharedTraceWriter, TraceError, TraceEvent, TraceWriter,
    TRACE_FORMAT,
};
