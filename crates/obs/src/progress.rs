//! Solver progress events and sinks.
//!
//! The search engine and the portfolio report what they are doing through
//! a [`ProgressSink`]; events are context-free (no cell/round) so the
//! emitting layer stays ignorant of who is listening, and the collector
//! stamps portfolio coordinates when converting to
//! [`TraceEvent`](crate::trace::TraceEvent)s via
//! [`ProgressEvent::into_trace`].
//!
//! [`SamplingSink`] is the standard collector: commit events are recorded
//! losslessly (a traced solve must reconstruct the exact committed step
//! sequence), while high-volume cache-outcome events are capped and the
//! overflow counted, so tracing a long solve cannot balloon memory.

use crate::trace::TraceEvent;

/// One progress report from a running search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProgressEvent {
    /// A committed move/swap, mirroring the engine's `CommitStep` plus the
    /// incumbent-improved verdict.
    Commit {
        /// `true` for a swap, `false` for a move.
        swap: bool,
        /// Moved task (moves) or first swapped task.
        a: u64,
        /// Destination machine (moves) or second swapped task.
        b: u64,
        /// IEEE-754 bits of the committed period.
        period_bits: u64,
        /// Whether the commit improved the engine's best-so-far.
        improved: bool,
    },
    /// An anytime-solve incumbent/bound improvement. Mapped onto the
    /// `Round` trace record (the anytime driver's "rounds" are its stream
    /// messages), with `done` carrying the optimality-proven flag.
    Incumbent {
        /// IEEE-754 bits of the incumbent period.
        period_bits: u64,
        /// Steps consumed when the incumbent was found (stamped into the
        /// trace record's `round` coordinate by the collector).
        steps: u64,
        /// Whether the incumbent is proven optimal (gap closed).
        proven: bool,
    },
    /// Cumulative sweep-cache counters at some point in the run.
    CacheOutcome {
        /// Candidates considered by sweeps.
        probes: u64,
        /// Candidates re-evaluated.
        evaluations: u64,
        /// Candidates skipped via certified cached scores.
        skips: u64,
        /// Cached scores reused verbatim.
        reuses: u64,
        /// Cached deltas rescaled by the chain fast path.
        rescales: u64,
    },
}

impl ProgressEvent {
    /// Stamps portfolio coordinates onto the event, yielding the
    /// `mf-trace v1` record.
    pub fn into_trace(self, cell: u64, round: u64) -> TraceEvent {
        match self {
            ProgressEvent::Commit {
                swap,
                a,
                b,
                period_bits,
                improved,
            } => TraceEvent::Commit {
                cell,
                round,
                swap,
                a,
                b,
                period_bits,
                improved,
            },
            ProgressEvent::Incumbent {
                period_bits,
                steps,
                proven,
            } => TraceEvent::Round {
                cell,
                round: steps,
                period_bits: Some(period_bits),
                done: proven,
            },
            ProgressEvent::CacheOutcome {
                probes,
                evaluations,
                skips,
                reuses,
                rescales,
            } => TraceEvent::Cache {
                cell,
                round,
                probes,
                evaluations,
                skips,
                reuses,
                rescales,
            },
        }
    }
}

/// Receives progress events from a running search. Implementations must
/// not panic on any event sequence — the solver treats the sink as
/// fire-and-forget.
pub trait ProgressSink {
    /// Called once per event, in the order the search produced them.
    fn emit(&mut self, event: ProgressEvent);
}

/// Discards everything; for call sites that need a sink value but no
/// observation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn emit(&mut self, _event: ProgressEvent) {}
}

/// Collects commit events losslessly and cache-outcome events up to a
/// cap, counting overflow. Order within the sink is emission order.
#[derive(Debug)]
pub struct SamplingSink {
    events: Vec<ProgressEvent>,
    cache_cap: usize,
    cache_recorded: usize,
    dropped: u64,
}

impl SamplingSink {
    /// A sink retaining at most `cache_cap` cache-outcome events
    /// (commits are never dropped).
    pub fn new(cache_cap: usize) -> Self {
        SamplingSink {
            events: Vec::new(),
            cache_cap,
            cache_recorded: 0,
            dropped: 0,
        }
    }

    /// The retained events, in emission order.
    pub fn events(&self) -> &[ProgressEvent] {
        &self.events
    }

    /// How many cache-outcome events the cap discarded.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the sink, returning `(retained events, dropped count)`.
    pub fn into_parts(self) -> (Vec<ProgressEvent>, u64) {
        (self.events, self.dropped)
    }
}

impl ProgressSink for SamplingSink {
    fn emit(&mut self, event: ProgressEvent) {
        match event {
            ProgressEvent::Commit { .. } | ProgressEvent::Incumbent { .. } => {
                self.events.push(event)
            }
            ProgressEvent::CacheOutcome { .. } => {
                if self.cache_recorded < self.cache_cap {
                    self.cache_recorded += 1;
                    self.events.push(event);
                } else {
                    self.dropped += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(a: u64) -> ProgressEvent {
        ProgressEvent::Commit {
            swap: false,
            a,
            b: 0,
            period_bits: 0,
            improved: false,
        }
    }

    fn cache(probes: u64) -> ProgressEvent {
        ProgressEvent::CacheOutcome {
            probes,
            evaluations: 0,
            skips: 0,
            reuses: 0,
            rescales: 0,
        }
    }

    #[test]
    fn commits_are_lossless_and_cache_outcomes_are_capped() {
        let mut sink = SamplingSink::new(2);
        for i in 0..5 {
            sink.emit(commit(i));
            sink.emit(cache(i));
        }
        let commits = sink
            .events()
            .iter()
            .filter(|e| matches!(e, ProgressEvent::Commit { .. }))
            .count();
        let caches = sink
            .events()
            .iter()
            .filter(|e| matches!(e, ProgressEvent::CacheOutcome { .. }))
            .count();
        assert_eq!(commits, 5);
        assert_eq!(caches, 2);
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn incumbents_are_lossless_and_map_to_round_records() {
        let mut sink = SamplingSink::new(0);
        let event = ProgressEvent::Incumbent {
            period_bits: 40.25_f64.to_bits(),
            steps: 1234,
            proven: true,
        };
        sink.emit(event);
        assert_eq!(sink.events(), &[event]);
        assert_eq!(sink.dropped(), 0);
        assert_eq!(
            event.into_trace(5, 0),
            crate::trace::TraceEvent::Round {
                cell: 5,
                round: 1234,
                period_bits: Some(40.25_f64.to_bits()),
                done: true,
            }
        );
    }

    #[test]
    fn into_trace_stamps_coordinates() {
        let event = commit(7).into_trace(2, 3);
        assert_eq!(
            event,
            crate::trace::TraceEvent::Commit {
                cell: 2,
                round: 3,
                swap: false,
                a: 7,
                b: 0,
                period_bits: 0,
                improved: false,
            }
        );
    }
}
