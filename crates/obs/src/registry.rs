//! A registry of named metrics with deterministic exposition order.
//!
//! The registry hands out cheap `Arc`-backed handles ([`Counter`],
//! [`Gauge`], [`std::sync::Arc<Histogram>`]) keyed by name; registering the
//! same name twice returns the same underlying metric. Exposition
//! ([`Registry::expose`]) walks each kind in sorted-name order, so any
//! serialization of a registry is byte-stable across runs and hash-map
//! reorderings.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    pub fn increment(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrites the gauge.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A collection of named counters, gauges, and histograms. Thread-safe;
/// registration takes a short lock, recording through the returned handles
/// is lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        let value = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter {
            value: Arc::clone(value),
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        let value = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge {
            value: Arc::clone(value),
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time view of every metric, each kind in sorted-name
    /// order.
    pub fn expose(&self) -> Exposition {
        let inner = self.inner.lock().expect("registry lock poisoned");
        Exposition {
            counters: inner
                .counters
                .iter()
                .map(|(name, value)| (name.clone(), value.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, value)| (name.clone(), value.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
                .collect(),
        }
    }
}

/// A deterministic snapshot of a [`Registry`]: each `Vec` is sorted by
/// metric name.
#[derive(Debug, Clone, PartialEq)]
pub struct Exposition {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_alias_the_same_metric() {
        let registry = Registry::new();
        registry.counter("requests").add(3);
        registry.counter("requests").increment();
        assert_eq!(registry.counter("requests").get(), 4);

        registry.gauge("resident").set(17);
        assert_eq!(registry.gauge("resident").get(), 17);

        registry.histogram("latency").record(100);
        assert_eq!(registry.histogram("latency").snapshot().count(), 1);
    }

    #[test]
    fn exposition_order_is_sorted_regardless_of_registration_order() {
        let registry = Registry::new();
        registry.counter("zeta").increment();
        registry.counter("alpha").increment();
        registry.counter("mid").increment();
        let exposition = registry.expose();
        let names: Vec<&str> = exposition
            .counters
            .iter()
            .map(|(name, _)| name.as_str())
            .collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }
}
