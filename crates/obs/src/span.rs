//! Scoped RAII timers.
//!
//! A [`ScopedSpan`] reads the clock when entered and reports
//! `(name, start, duration)` to a [`SpanSink`] when dropped — including on
//! early returns and `?` propagation, which is the point of the RAII
//! shape. The [`span!`](crate::span!) macro is sugar for
//! [`ScopedSpan::enter`]:
//!
//! ```
//! use mf_obs::{span, ManualClock, SpanSink};
//! use std::sync::Mutex;
//!
//! struct Log(Mutex<Vec<(String, u64, u64)>>);
//! impl SpanSink for Log {
//!     fn span_closed(&self, name: &str, start_ns: u64, duration_ns: u64) {
//!         self.0.lock().unwrap().push((name.to_string(), start_ns, duration_ns));
//!     }
//! }
//!
//! let clock = ManualClock::new(0);
//! let log = Log(Mutex::new(Vec::new()));
//! {
//!     let _span = span!(&clock, "evaluate", &log);
//!     clock.advance(250);
//! }
//! assert_eq!(log.0.lock().unwrap().as_slice(), &[("evaluate".to_string(), 0, 250)]);
//! ```

use crate::clock::Clock;

/// Receives closed spans. Implementations must be callable through a
/// shared reference so one sink can serve many concurrent spans.
pub trait SpanSink {
    /// Called exactly once per span, when it closes.
    fn span_closed(&self, name: &str, start_ns: u64, duration_ns: u64);
}

/// A bare start/elapsed stopwatch for call sites that want the measured
/// duration as a value (to record into a histogram, say) rather than
/// routed through a sink.
#[derive(Clone, Copy)]
pub struct SpanTimer<'c> {
    clock: &'c dyn Clock,
    start_ns: u64,
}

impl<'c> SpanTimer<'c> {
    /// Starts timing now.
    pub fn start(clock: &'c dyn Clock) -> Self {
        SpanTimer {
            start_ns: clock.now_ns(),
            clock,
        }
    }

    /// The clock reading when the timer started.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Nanoseconds elapsed since [`start`](SpanTimer::start).
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start_ns)
    }
}

/// An RAII span: reports to its sink when dropped.
pub struct ScopedSpan<'a> {
    clock: &'a dyn Clock,
    sink: &'a dyn SpanSink,
    name: &'a str,
    start_ns: u64,
}

impl<'a> ScopedSpan<'a> {
    /// Opens a span named `name`.
    pub fn enter(clock: &'a dyn Clock, name: &'a str, sink: &'a dyn SpanSink) -> Self {
        ScopedSpan {
            start_ns: clock.now_ns(),
            clock,
            sink,
            name,
        }
    }
}

impl Drop for ScopedSpan<'_> {
    fn drop(&mut self) {
        let duration = self.clock.now_ns().saturating_sub(self.start_ns);
        self.sink.span_closed(self.name, self.start_ns, duration);
    }
}

/// Opens a [`ScopedSpan`]: `span!(clock, "name", sink)`. Bind it to a
/// local (`let _span = …`) so it lives to the end of the scope.
#[macro_export]
macro_rules! span {
    ($clock:expr, $name:expr, $sink:expr) => {
        $crate::span::ScopedSpan::enter($clock, $name, $sink)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::Mutex;

    struct Collector(Mutex<Vec<(String, u64, u64)>>);

    impl SpanSink for Collector {
        fn span_closed(&self, name: &str, start_ns: u64, duration_ns: u64) {
            self.0
                .lock()
                .unwrap()
                .push((name.to_string(), start_ns, duration_ns));
        }
    }

    #[test]
    fn span_reports_on_drop_even_on_early_return() {
        let clock = ManualClock::new(100);
        let collector = Collector(Mutex::new(Vec::new()));
        let early = || -> Result<(), ()> {
            let _span = span!(&clock, "inner", &collector);
            clock.advance(40);
            Err(())?;
            unreachable!()
        };
        assert!(early().is_err());
        assert_eq!(
            collector.0.lock().unwrap().as_slice(),
            &[("inner".to_string(), 100, 40)]
        );
    }

    #[test]
    fn nested_spans_close_inner_first() {
        let clock = ManualClock::new(0);
        let collector = Collector(Mutex::new(Vec::new()));
        {
            let _outer = span!(&clock, "outer", &collector);
            clock.advance(10);
            {
                let _inner = span!(&clock, "inner", &collector);
                clock.advance(5);
            }
            clock.advance(1);
        }
        assert_eq!(
            collector.0.lock().unwrap().as_slice(),
            &[("inner".to_string(), 10, 5), ("outer".to_string(), 0, 16)]
        );
    }

    #[test]
    fn span_timer_measures_elapsed() {
        let clock = ManualClock::new(50);
        let timer = SpanTimer::start(&clock);
        clock.advance(30);
        assert_eq!(timer.start_ns(), 50);
        assert_eq!(timer.elapsed_ns(), 30);
    }
}
