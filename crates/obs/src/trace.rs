//! The append-only `mf-trace v1` event log.
//!
//! Styled after the experiment tier's `mf-report v1`: a versioned header
//! line, one whitespace-delimited record per line, and a counted `end`
//! footer so truncation is detectable. The grammar (`<…>` are unsigned
//! decimal integers unless noted):
//!
//! ```text
//! mf-trace v1
//! span <name> <start-ns> <duration-ns>
//! slow <command> <duration-ns> <threshold-ns>
//! commit <cell> <round> move|swap <a> <b> <period-bits> <improved:0|1>
//! round <cell> <round> <period-bits|-> <done:0|1>
//! cache <cell> <round> <probes> <evaluations> <skips> <reuses> <rescales>
//! dropped <class> <count>
//! end <event-count>
//! ```
//!
//! `<name>`/`<command>`/`<class>` are single tokens (non-empty, no
//! whitespace or control characters). Periods travel as the IEEE-754 bit
//! pattern of the `f64` (`<period-bits>`), exactly like the search
//! engine's commit trace, so a traced solve can be compared bit-for-bit
//! against `enable_commit_trace`. Serialization is canonical:
//! write→parse→write is byte-identical, pinned by tests here and used by
//! the `microfactory trace` CLI verifier.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Format tag on the first line of every trace file.
pub const TRACE_FORMAT: &str = "mf-trace v1";

/// One record in an `mf-trace v1` log.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A closed timing span.
    Span {
        /// Span name (single token).
        name: String,
        /// Clock reading at open.
        start_ns: u64,
        /// Nanoseconds between open and close.
        duration_ns: u64,
    },
    /// A request that exceeded the server's slow-request threshold.
    Slow {
        /// Protocol command keyword.
        command: String,
        /// Measured latency.
        duration_ns: u64,
        /// The threshold it exceeded.
        threshold_ns: u64,
    },
    /// A committed search step (move or swap), with the period it reached.
    Commit {
        /// Portfolio cell the step belongs to (0 outside the portfolio).
        cell: u64,
        /// Portfolio round (0 outside the portfolio).
        round: u64,
        /// `true` for a swap, `false` for a move.
        swap: bool,
        /// Moved task (moves) or first swapped task.
        a: u64,
        /// Destination machine (moves) or second swapped task.
        b: u64,
        /// IEEE-754 bits of the committed period.
        period_bits: u64,
        /// Whether this commit improved the engine's incumbent.
        improved: bool,
    },
    /// A portfolio cell finishing a round.
    Round {
        /// Portfolio cell.
        cell: u64,
        /// Completed round index.
        round: u64,
        /// IEEE-754 bits of the cell's period after the round, if the
        /// cell holds a mapping.
        period_bits: Option<u64>,
        /// Whether the cell is done (seed failed or converged).
        done: bool,
    },
    /// Sweep-cache outcome counters for one search run.
    Cache {
        /// Portfolio cell.
        cell: u64,
        /// Portfolio round.
        round: u64,
        /// Candidates considered by sweeps.
        probes: u64,
        /// Candidates re-evaluated.
        evaluations: u64,
        /// Candidates skipped via certified cached scores.
        skips: u64,
        /// Cached scores reused verbatim.
        reuses: u64,
        /// Cached deltas rescaled by the chain fast path.
        rescales: u64,
    },
    /// Events withheld by a sampling cap.
    Dropped {
        /// Which event class was capped (single token).
        class: String,
        /// How many events were dropped.
        count: u64,
    },
}

/// Why a trace document could not be written or read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A name/command/class token was empty or contained whitespace or
    /// control characters, so it cannot survive the line format.
    UnencodableToken(String),
    /// The text being parsed is not a valid `mf-trace v1` document.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnencodableToken(token) => {
                write!(f, "token {token:?} cannot be encoded in mf-trace v1")
            }
            TraceError::Malformed { line, detail } => {
                write!(f, "malformed mf-trace v1 document at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

fn malformed(line: usize, detail: impl Into<String>) -> TraceError {
    TraceError::Malformed {
        line,
        detail: detail.into(),
    }
}

fn check_token(token: &str) -> Result<(), TraceError> {
    if token.is_empty() || token.chars().any(|c| c.is_whitespace() || c.is_control()) {
        return Err(TraceError::UnencodableToken(token.to_string()));
    }
    Ok(())
}

fn event_line(event: &TraceEvent) -> Result<String, TraceError> {
    Ok(match event {
        TraceEvent::Span {
            name,
            start_ns,
            duration_ns,
        } => {
            check_token(name)?;
            format!("span {name} {start_ns} {duration_ns}")
        }
        TraceEvent::Slow {
            command,
            duration_ns,
            threshold_ns,
        } => {
            check_token(command)?;
            format!("slow {command} {duration_ns} {threshold_ns}")
        }
        TraceEvent::Commit {
            cell,
            round,
            swap,
            a,
            b,
            period_bits,
            improved,
        } => {
            let kind = if *swap { "swap" } else { "move" };
            let improved = u64::from(*improved);
            format!("commit {cell} {round} {kind} {a} {b} {period_bits} {improved}")
        }
        TraceEvent::Round {
            cell,
            round,
            period_bits,
            done,
        } => {
            let period = match period_bits {
                Some(bits) => bits.to_string(),
                None => "-".to_string(),
            };
            let done = u64::from(*done);
            format!("round {cell} {round} {period} {done}")
        }
        TraceEvent::Cache {
            cell,
            round,
            probes,
            evaluations,
            skips,
            reuses,
            rescales,
        } => {
            format!("cache {cell} {round} {probes} {evaluations} {skips} {reuses} {rescales}")
        }
        TraceEvent::Dropped { class, count } => {
            check_token(class)?;
            format!("dropped {class} {count}")
        }
    })
}

/// Serializes events as a complete `mf-trace v1` document (header, one
/// line per event, counted `end` footer). Canonical: parsing the result
/// and re-serializing reproduces it byte for byte.
pub fn events_to_text(events: &[TraceEvent]) -> Result<String, TraceError> {
    let mut text = String::new();
    text.push_str(TRACE_FORMAT);
    text.push('\n');
    for event in events {
        text.push_str(&event_line(event)?);
        text.push('\n');
    }
    text.push_str(&format!("end {}\n", events.len()));
    Ok(text)
}

struct LineParser<'t> {
    lines: std::iter::Enumerate<std::str::Lines<'t>>,
}

impl<'t> LineParser<'t> {
    fn new(text: &'t str) -> Self {
        LineParser {
            lines: text.lines().enumerate(),
        }
    }

    /// Next non-empty line as `(1-based line number, content)`.
    fn next(&mut self) -> Option<(usize, &'t str)> {
        for (index, line) in self.lines.by_ref() {
            if !line.trim().is_empty() {
                return Some((index + 1, line));
            }
        }
        None
    }
}

fn parse_u64(line: usize, field: &str, token: &str) -> Result<u64, TraceError> {
    token.parse::<u64>().map_err(|_| {
        malformed(
            line,
            format!("{field} is not an unsigned integer: {token:?}"),
        )
    })
}

fn parse_flag(line: usize, field: &str, token: &str) -> Result<bool, TraceError> {
    match token {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(malformed(
            line,
            format!("{field} must be 0 or 1: {token:?}"),
        )),
    }
}

fn expect_fields(
    line: usize,
    tag: &str,
    fields: &[&str],
    expected: usize,
) -> Result<(), TraceError> {
    if fields.len() != expected {
        return Err(malformed(
            line,
            format!(
                "{tag} record needs {expected} fields after the tag, got {}",
                fields.len()
            ),
        ));
    }
    Ok(())
}

fn parse_event(line: usize, content: &str) -> Result<TraceEvent, TraceError> {
    let mut tokens = content.split_whitespace();
    let tag = tokens.next().expect("next() only yields non-empty lines");
    let fields: Vec<&str> = tokens.collect();
    match tag {
        "span" => {
            expect_fields(line, "span", &fields, 3)?;
            check_token(fields[0])?;
            Ok(TraceEvent::Span {
                name: fields[0].to_string(),
                start_ns: parse_u64(line, "start-ns", fields[1])?,
                duration_ns: parse_u64(line, "duration-ns", fields[2])?,
            })
        }
        "slow" => {
            expect_fields(line, "slow", &fields, 3)?;
            check_token(fields[0])?;
            Ok(TraceEvent::Slow {
                command: fields[0].to_string(),
                duration_ns: parse_u64(line, "duration-ns", fields[1])?,
                threshold_ns: parse_u64(line, "threshold-ns", fields[2])?,
            })
        }
        "commit" => {
            expect_fields(line, "commit", &fields, 7)?;
            let swap = match fields[2] {
                "move" => false,
                "swap" => true,
                other => {
                    return Err(malformed(
                        line,
                        format!("commit kind must be move or swap: {other:?}"),
                    ))
                }
            };
            Ok(TraceEvent::Commit {
                cell: parse_u64(line, "cell", fields[0])?,
                round: parse_u64(line, "round", fields[1])?,
                swap,
                a: parse_u64(line, "a", fields[3])?,
                b: parse_u64(line, "b", fields[4])?,
                period_bits: parse_u64(line, "period-bits", fields[5])?,
                improved: parse_flag(line, "improved", fields[6])?,
            })
        }
        "round" => {
            expect_fields(line, "round", &fields, 4)?;
            let period_bits = if fields[2] == "-" {
                None
            } else {
                Some(parse_u64(line, "period-bits", fields[2])?)
            };
            Ok(TraceEvent::Round {
                cell: parse_u64(line, "cell", fields[0])?,
                round: parse_u64(line, "round", fields[1])?,
                period_bits,
                done: parse_flag(line, "done", fields[3])?,
            })
        }
        "cache" => {
            expect_fields(line, "cache", &fields, 7)?;
            Ok(TraceEvent::Cache {
                cell: parse_u64(line, "cell", fields[0])?,
                round: parse_u64(line, "round", fields[1])?,
                probes: parse_u64(line, "probes", fields[2])?,
                evaluations: parse_u64(line, "evaluations", fields[3])?,
                skips: parse_u64(line, "skips", fields[4])?,
                reuses: parse_u64(line, "reuses", fields[5])?,
                rescales: parse_u64(line, "rescales", fields[6])?,
            })
        }
        "dropped" => {
            expect_fields(line, "dropped", &fields, 2)?;
            check_token(fields[0])?;
            Ok(TraceEvent::Dropped {
                class: fields[0].to_string(),
                count: parse_u64(line, "count", fields[1])?,
            })
        }
        other => Err(malformed(line, format!("unknown record tag {other:?}"))),
    }
}

/// Parses a complete `mf-trace v1` document produced by
/// [`events_to_text`] or a finished [`TraceWriter`].
pub fn events_from_text(text: &str) -> Result<Vec<TraceEvent>, TraceError> {
    let mut parser = LineParser::new(text);
    let (line, header) = parser
        .next()
        .ok_or_else(|| malformed(1, "empty document"))?;
    if header.trim() != TRACE_FORMAT {
        return Err(malformed(
            line,
            format!("expected header {TRACE_FORMAT:?}, got {header:?}"),
        ));
    }
    let mut events = Vec::new();
    loop {
        let (line, content) = parser
            .next()
            .ok_or_else(|| malformed(line, "missing end footer"))?;
        let mut tokens = content.split_whitespace();
        let tag = tokens.next().expect("non-empty line");
        if tag == "end" {
            let fields: Vec<&str> = tokens.collect();
            expect_fields(line, "end", &fields, 1)?;
            let declared = parse_u64(line, "event-count", fields[0])?;
            if declared != events.len() as u64 {
                return Err(malformed(
                    line,
                    format!(
                        "end declares {declared} events, document has {}",
                        events.len()
                    ),
                ));
            }
            if let Some((line, content)) = parser.next() {
                return Err(malformed(
                    line,
                    format!("trailing content after end footer: {content:?}"),
                ));
            }
            return Ok(events);
        }
        events.push(parse_event(line, content)?);
    }
}

/// Streams events to a file: header at create, one line per
/// [`append`](TraceWriter::append), counted footer at
/// [`finish`](TraceWriter::finish).
#[derive(Debug)]
pub struct TraceWriter {
    file: BufWriter<File>,
    path: PathBuf,
    count: u64,
}

impl TraceWriter {
    /// Creates (truncating) `path` and writes the format header.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = BufWriter::new(File::create(&path)?);
        writeln!(file, "{TRACE_FORMAT}")?;
        Ok(TraceWriter {
            file,
            path,
            count: 0,
        })
    }

    /// The path the trace is being written to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event.
    pub fn append(&mut self, event: &TraceEvent) -> io::Result<()> {
        let line = event_line(event)
            .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))?;
        writeln!(self.file, "{line}")?;
        self.count += 1;
        Ok(())
    }

    /// Writes the counted `end` footer and flushes. The document parses
    /// with [`events_from_text`] only after this.
    pub fn finish(mut self) -> io::Result<()> {
        writeln!(self.file, "end {}", self.count)?;
        self.file.flush()
    }
}

/// A [`TraceWriter`] behind a mutex, shareable across the server's worker
/// engines and connection threads. Appends are best-effort: the first I/O
/// error disables the writer (observability must never take down serving),
/// and [`finish`](SharedTraceWriter::finish) reports whether everything
/// made it to disk.
#[derive(Debug)]
pub struct SharedTraceWriter {
    inner: Mutex<SharedState>,
}

#[derive(Debug)]
struct SharedState {
    writer: Option<TraceWriter>,
    error: Option<io::Error>,
}

impl SharedTraceWriter {
    /// Creates the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(SharedTraceWriter {
            inner: Mutex::new(SharedState {
                writer: Some(TraceWriter::create(path)?),
                error: None,
            }),
        })
    }

    /// Appends one event; on I/O failure the writer is disabled and the
    /// error is held for [`finish`](SharedTraceWriter::finish).
    pub fn append(&self, event: &TraceEvent) {
        let mut state = self.inner.lock().expect("trace writer lock poisoned");
        if state.error.is_some() {
            return;
        }
        if let Some(writer) = state.writer.as_mut() {
            if let Err(error) = writer.append(event) {
                state.writer = None;
                state.error = Some(error);
            }
        }
    }

    /// Writes the footer and flushes, surfacing any earlier append error.
    /// Idempotent: later calls are no-ops.
    pub fn finish(&self) -> io::Result<()> {
        let mut state = self.inner.lock().expect("trace writer lock poisoned");
        if let Some(error) = state.error.take() {
            return Err(error);
        }
        match state.writer.take() {
            Some(writer) => writer.finish(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Span {
                name: "solve".to_string(),
                start_ns: 0,
                duration_ns: 1_234_567,
            },
            TraceEvent::Slow {
                command: "solve".to_string(),
                duration_ns: 2_000_000_000,
                threshold_ns: 1_000_000_000,
            },
            TraceEvent::Commit {
                cell: 3,
                round: 1,
                swap: false,
                a: 7,
                b: 2,
                period_bits: 4_638_387_860_618_067_575,
                improved: true,
            },
            TraceEvent::Commit {
                cell: 3,
                round: 1,
                swap: true,
                a: 4,
                b: 9,
                period_bits: 4_638_387_860_618_067_570,
                improved: false,
            },
            TraceEvent::Round {
                cell: 3,
                round: 1,
                period_bits: Some(4_638_387_860_618_067_570),
                done: false,
            },
            TraceEvent::Round {
                cell: 5,
                round: 1,
                period_bits: None,
                done: true,
            },
            TraceEvent::Cache {
                cell: 3,
                round: 1,
                probes: 100,
                evaluations: 60,
                skips: 40,
                reuses: 30,
                rescales: 10,
            },
            TraceEvent::Dropped {
                class: "cache".to_string(),
                count: 12,
            },
        ]
    }

    #[test]
    fn write_parse_write_is_byte_identical() {
        let events = sample_events();
        let text = events_to_text(&events).unwrap();
        let parsed = events_from_text(&text).unwrap();
        assert_eq!(parsed, events);
        let rewritten = events_to_text(&parsed).unwrap();
        assert_eq!(rewritten, text);
    }

    #[test]
    fn writer_produces_a_parseable_document() {
        let dir = std::env::temp_dir().join(format!(
            "mf-obs-trace-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("writer.mf-trace");
        let events = sample_events();
        let mut writer = TraceWriter::create(&path).unwrap();
        for event in &events {
            writer.append(event).unwrap();
        }
        writer.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, events_to_text(&events).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_writer_is_concurrency_safe_and_counted() {
        let dir = std::env::temp_dir().join(format!(
            "mf-obs-shared-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.mf-trace");
        let shared = std::sync::Arc::new(SharedTraceWriter::create(&path).unwrap());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        shared.append(&TraceEvent::Span {
                            name: format!("t{t}"),
                            start_ns: i,
                            duration_ns: 1,
                        });
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        shared.finish().unwrap();
        let parsed = events_from_text(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.len(), 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_documents_are_rejected_with_line_numbers() {
        let cases: &[(&str, usize)] = &[
            ("", 1),
            ("mf-report v1\nend 0\n", 1),
            ("mf-trace v1\n", 1),
            ("mf-trace v1\nspan solve 1\nend 1\n", 2),
            ("mf-trace v1\nwat 1 2\nend 1\n", 2),
            ("mf-trace v1\nspan solve 1 2\nend 7\n", 3),
            ("mf-trace v1\nend 0\nspan solve 1 2\n", 3),
            ("mf-trace v1\ncommit 0 0 hop 1 2 3 1\nend 1\n", 2),
            ("mf-trace v1\nround 0 0 x 1\nend 1\n", 2),
        ];
        for (text, expected_line) in cases {
            match events_from_text(text) {
                Err(TraceError::Malformed { line, .. }) => {
                    assert_eq!(line, *expected_line, "wrong line for {text:?}")
                }
                other => panic!("expected malformed error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn unencodable_tokens_are_rejected_at_write_time() {
        for bad in ["", "two words", "tab\tted", "new\nline"] {
            let event = TraceEvent::Span {
                name: bad.to_string(),
                start_ns: 0,
                duration_ns: 0,
            };
            assert_eq!(
                events_to_text(std::slice::from_ref(&event)),
                Err(TraceError::UnencodableToken(bad.to_string()))
            );
        }
    }
}
