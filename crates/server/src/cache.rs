//! The keyed evaluate cache: (store name, load generation, mapping
//! fingerprint) → period breakdown + pristine evaluator snapshot.
//!
//! Dashboards re-`evaluate` the same few mappings against the same instances
//! over and over; each of those evaluations rebuilds an
//! [`IncrementalEvaluator`](mf_core::IncrementalEvaluator) from scratch —
//! `O(n log m)` demand/load work that produces a bit-identical answer every
//! time. This cache keys a finished evaluation by the instance's store
//! name, its **load generation** (bumped on every `load`, so a reload
//! invalidates all cached entries for the name automatically) and the
//! mapping's content [`fingerprint`](mf_core::Mapping::fingerprint), and
//! stores the full answer: period, critical machine, per-machine loads,
//! **and** the pristine post-build [`EvaluatorSnapshot`] — so a cache hit
//! still installs session-resident what-if state, exactly as a fresh build
//! would, without running the evaluator.
//!
//! The name is part of the key because generations are only unique *per
//! engine counter*: a shared multi-worker journal replayed at a different
//! `--workers` count can legitimately pin two different instances at the
//! same generation inside one engine, and `(generation, fingerprint)` alone
//! would let one instance's evaluation answer for the other.
//!
//! Entries are evicted least-recently-used past [`EVALUATE_CACHE_CAP`], and
//! hits/misses/evictions are counted for `stats` (v2) and `status-export`.

use mf_core::EvaluatorSnapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Most cached evaluations kept per engine; least-recently-used entries are
/// dropped past this (an entry holds the instance-sized snapshot vectors, so
/// the cap bounds memory at roughly `cap × instance bytes`).
pub const EVALUATE_CACHE_CAP: usize = 128;

/// One cached evaluation: the full `evaluate` answer plus the pristine
/// snapshot a hit re-installs as session-resident what-if state.
#[derive(Debug, Clone)]
pub struct CachedEvaluation {
    /// System period (ms), bit-identical to the fresh evaluation.
    pub period: f64,
    /// Critical machine index.
    pub critical: usize,
    /// Per-machine loads (ms), indexed by machine.
    pub loads: Vec<f64>,
    /// The evaluator state exactly as a fresh build commits it.
    pub snapshot: EvaluatorSnapshot,
}

struct CacheEntry {
    value: CachedEvaluation,
    /// Recency stamp for the LRU cap.
    last_used: u64,
}

/// Cache key: store name, load generation, mapping fingerprint.
type CacheKey = (String, u64, u64);

#[derive(Default)]
struct CacheInner {
    entries: HashMap<CacheKey, CacheEntry>,
    clock: u64,
}

/// A keyed cache of finished evaluations, shared by all sessions of one
/// engine. Interior mutability (one mutex around the map, atomics for the
/// counters) keeps the engine's `&self` dispatch signature.
pub struct EvaluateCache {
    inner: Mutex<CacheInner>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for EvaluateCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EvaluateCache {
    /// An empty cache with the default [`EVALUATE_CACHE_CAP`].
    pub fn new() -> Self {
        Self::with_cap(EVALUATE_CACHE_CAP)
    }

    /// An empty cache holding at most `cap` entries (`0` disables caching).
    pub fn with_cap(cap: usize) -> Self {
        EvaluateCache {
            inner: Mutex::new(CacheInner::default()),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a finished evaluation; counts a hit or a miss either way.
    pub fn lookup(
        &self,
        name: &str,
        generation: u64,
        fingerprint: u64,
    ) -> Option<CachedEvaluation> {
        let mut inner = self.inner.lock().expect("evaluate cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        match inner
            .entries
            .get_mut(&(name.to_string(), generation, fingerprint))
        {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a finished evaluation, evicting the least-recently-used entry
    /// past the cap.
    pub fn insert(&self, name: &str, generation: u64, fingerprint: u64, value: CachedEvaluation) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("evaluate cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        let key = (name.to_string(), generation, fingerprint);
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.cap {
            if let Some(coldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
            {
                inner.entries.remove(&coldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.entries.insert(
            key,
            CacheEntry {
                value,
                last_used: clock,
            },
        );
    }

    /// Drops every entry of one store name. A name's generation never
    /// repeats (the store counter only climbs and replays reserve the
    /// journal mark), so stale entries could never hit again anyway —
    /// purging on `load`/`unload` just frees their memory eagerly instead
    /// of waiting for the LRU cap to age them out.
    pub fn purge(&self, name: &str) {
        let mut inner = self.inner.lock().expect("evaluate cache poisoned");
        inner.entries.retain(|key, _| key.0 != name);
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("evaluate cache poisoned")
            .entries
            .len()
    }

    /// `true` when no evaluation is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by the LRU cap.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_core::prelude::*;
    use mf_core::textio;
    use mf_sim::{GeneratorConfig, InstanceGenerator};

    fn snapshot_for(seed: u64) -> (f64, EvaluatorSnapshot) {
        let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(6, 3, 2))
            .generate(seed)
            .unwrap();
        let text = textio::instance_to_text(&instance);
        let instance = textio::instance_from_text(&text).unwrap();
        let mapping = mf_heuristics::paper_heuristic("H4w", 1)
            .unwrap()
            .map(&instance)
            .unwrap();
        let evaluator = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        (evaluator.period().value(), evaluator.into_snapshot())
    }

    fn cached(period: f64, snapshot: EvaluatorSnapshot) -> CachedEvaluation {
        CachedEvaluation {
            period,
            critical: 0,
            loads: vec![period],
            snapshot,
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses_and_lru_evicts() {
        let cache = EvaluateCache::with_cap(2);
        let (period, snapshot) = snapshot_for(1);
        assert!(cache.lookup("a", 1, 10).is_none());
        cache.insert("a", 1, 10, cached(period, snapshot.clone()));
        cache.insert("a", 1, 11, cached(period, snapshot.clone()));
        let hit = cache.lookup("a", 1, 10).expect("cached");
        assert_eq!(hit.period.to_bits(), period.to_bits());
        // Entry (a,1,11) is now the coldest; a third insert evicts it.
        cache.insert("b", 2, 12, cached(period, snapshot.clone()));
        assert!(
            cache.lookup("a", 1, 11).is_none(),
            "LRU entry must be evicted"
        );
        assert!(cache.lookup("a", 1, 10).is_some());
        assert!(cache.lookup("b", 2, 12).is_some());
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    /// Two names pinned at the same generation (a multi-worker journal
    /// replayed into fewer engines does exactly this) must keep separate
    /// entries even for the same mapping fingerprint.
    #[test]
    fn same_generation_and_fingerprint_do_not_alias_across_names() {
        let cache = EvaluateCache::new();
        let (period_a, snapshot_a) = snapshot_for(1);
        let (period_b, snapshot_b) = snapshot_for(2);
        assert_ne!(period_a.to_bits(), period_b.to_bits());
        cache.insert("a", 0, 10, cached(period_a, snapshot_a));
        cache.insert("b", 0, 10, cached(period_b, snapshot_b));
        assert_eq!(cache.len(), 2, "the keys must not collide");
        let hit_a = cache.lookup("a", 0, 10).expect("a cached");
        let hit_b = cache.lookup("b", 0, 10).expect("b cached");
        assert_eq!(hit_a.period.to_bits(), period_a.to_bits());
        assert_eq!(hit_b.period.to_bits(), period_b.to_bits());
    }

    #[test]
    fn purge_drops_only_the_named_instances_entries() {
        let cache = EvaluateCache::new();
        let (period, snapshot) = snapshot_for(1);
        cache.insert("a", 1, 10, cached(period, snapshot.clone()));
        cache.insert("a", 3, 11, cached(period, snapshot.clone()));
        cache.insert("b", 2, 10, cached(period, snapshot));
        cache.purge("a");
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup("b", 2, 10).is_some());
        assert!(cache.lookup("a", 1, 10).is_none());
    }

    #[test]
    fn zero_cap_disables_caching() {
        let cache = EvaluateCache::with_cap(0);
        let (period, snapshot) = snapshot_for(1);
        cache.insert("a", 1, 10, cached(period, snapshot));
        assert!(cache.is_empty());
        assert!(cache.lookup("a", 1, 10).is_none());
        assert_eq!(cache.evictions(), 0);
    }
}
