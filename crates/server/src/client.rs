//! A small blocking `mf-proto v1` client.
//!
//! Used by the `microfactory client` subcommand and by the integration
//! tests; deliberately synchronous — one request, one response — because
//! the protocol itself is strictly request/response.

use crate::proto::{request_to_text, ProtoError, ProtoReader, Request, Response, GREETING};
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or stream failure.
    Io(std::io::Error),
    /// The peer is not an `mf-proto v1` server.
    BadGreeting(String),
    /// The peer's bytes did not parse as a protocol response.
    Proto(ProtoError),
    /// The peer closed the stream before answering.
    ServerClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::BadGreeting(greeting) => {
                write!(f, "not an mf-proto v1 server (greeting `{greeting}`)")
            }
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// A connected session.
#[derive(Debug)]
pub struct Client {
    reader: ProtoReader<BufReader<TcpStream>>,
    writer: TcpStream,
}

impl Client {
    /// Connects and verifies the server greeting.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let mut client = Client {
            reader: ProtoReader::new(BufReader::new(stream.try_clone()?)),
            writer: stream,
        };
        let greeting = client
            .reader
            .read_greeting()?
            .ok_or(ClientError::ServerClosed)?;
        if greeting != GREETING {
            return Err(ClientError::BadGreeting(greeting));
        }
        Ok(client)
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let text = request_to_text(request)?;
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;
        self.reader
            .read_response()?
            .ok_or(ClientError::ServerClosed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn connect_refuses_non_protocol_peers() {
        // A listener that greets wrongly.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream.write_all(b"hello there\n").unwrap();
        });
        let err = Client::connect(addr).unwrap_err();
        assert!(matches!(err, ClientError::BadGreeting(_)), "{err}");
        peer.join().unwrap();
    }

    #[test]
    fn round_trip_against_a_live_server() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let mut client = Client::connect(addr).unwrap();
        let response = client.request(&Request::List).unwrap();
        assert_eq!(response, Response::List(Vec::new()));
        let response = client.request(&Request::Shutdown).unwrap();
        assert_eq!(response, Response::Shutdown);
        drop(client);
        handle.join().unwrap();
    }
}
