//! A small blocking `mf-proto` client with a typed request API.
//!
//! Used by the `microfactory client`/`stats` subcommands and by the
//! integration tests; deliberately synchronous — one request, one response —
//! because the protocol itself is strictly request/response.
//!
//! The typed methods ([`Client::load`], [`Client::evaluate`],
//! [`Client::solve`], …) build the [`Request`], send it, and destructure
//! the matching [`Response`] — a server-side `err <code> <detail>` becomes
//! [`ClientError::Server`], an answer of the wrong shape
//! [`ClientError::Unexpected`]. For raw scripting there are two escape
//! hatches: [`Client::request`] sends any pre-built [`Request`], and
//! [`Client::send_line`] ships one hand-written protocol line verbatim.

use crate::proto::{
    request_to_text, ErrorCode, GapReport, InstanceInfo, Probe, ProtoError, ProtoReader,
    ProtoVersion, Request, Response, SolveMethod, GREETING,
};
use mf_core::textio;
use mf_core::Mapping;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or stream failure.
    Io(std::io::Error),
    /// The peer is not an `mf-proto` server.
    BadGreeting(String),
    /// The peer's bytes did not parse as a protocol response.
    Proto(ProtoError),
    /// The peer closed the stream before answering.
    ServerClosed,
    /// The server answered `err <code> <detail>`.
    Server {
        /// Error class.
        code: ErrorCode,
        /// The server's one-line detail.
        detail: String,
    },
    /// The server answered successfully, but not with the response shape
    /// the typed call expected.
    Unexpected {
        /// The response the call was waiting for.
        expected: &'static str,
        /// Debug rendering of what arrived instead.
        got: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::BadGreeting(greeting) => {
                write!(f, "not an mf-proto server (greeting `{greeting}`)")
            }
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
            ClientError::Server { code, detail } => {
                write!(f, "server error ({}): {detail}", code.token())
            }
            ClientError::Unexpected { expected, got } => {
                write!(f, "expected an `{expected}` answer, got {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// A finished `evaluate` answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// System period (ms), bit-identical to the one-shot evaluation.
    pub period: f64,
    /// Critical machine index.
    pub critical: usize,
    /// Per-machine loads (ms), indexed by machine.
    pub loads: Vec<f64>,
}

/// A finished `solve` answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Winning method label (registry name, or portfolio cell label).
    pub label: String,
    /// Achieved system period (ms).
    pub period: f64,
    /// The computed mapping.
    pub mapping: Mapping,
}

/// A finished `solve … anytime` answer: the streamed incumbent/bound
/// reports (monotone, first one feasible) plus the final mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeSolution {
    /// Every `gap` line the server streamed, in emission order.
    pub reports: Vec<GapReport>,
    /// Final period (ms) of the returned mapping.
    pub period: f64,
    /// The best mapping found within the budget.
    pub mapping: Mapping,
}

/// A connected session.
#[derive(Debug)]
pub struct Client {
    reader: ProtoReader<BufReader<TcpStream>>,
    writer: TcpStream,
}

impl Client {
    /// Connects and verifies the server greeting. The session speaks v1
    /// until [`Client::hello`] upgrades it.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let mut client = Client {
            reader: ProtoReader::new(BufReader::new(stream.try_clone()?)),
            writer: stream,
        };
        let greeting = client
            .reader
            .read_greeting()?
            .ok_or(ClientError::ServerClosed)?;
        if greeting != GREETING {
            return Err(ClientError::BadGreeting(greeting));
        }
        Ok(client)
    }

    /// Sends one pre-built request and blocks for its response. Error
    /// responses are returned as values, not as [`ClientError::Server`] —
    /// this is the structured escape hatch the typed methods build on.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let text = request_to_text(request)?;
        self.send_text(&text)
    }

    /// Ships hand-written protocol text verbatim (a newline is appended if
    /// missing) and blocks for one response — the raw escape hatch for
    /// scripts and protocol exploration. The text must be one complete
    /// request (head line plus any payload lines).
    pub fn send_line(&mut self, line: &str) -> Result<Response, ClientError> {
        if line.ends_with('\n') {
            self.send_text(line)
        } else {
            self.send_text(&format!("{line}\n"))
        }
    }

    fn send_text(&mut self, text: &str) -> Result<Response, ClientError> {
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;
        self.reader
            .read_response()?
            .ok_or(ClientError::ServerClosed)
    }

    /// Sends a typed request and converts an `err` answer into
    /// [`ClientError::Server`].
    fn expect(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            response => Ok(response),
        }
    }

    /// Negotiates the protocol version (`hello mf-proto v{requested}`) and
    /// returns what the server granted.
    pub fn hello(&mut self, requested: u32) -> Result<ProtoVersion, ClientError> {
        match self.expect(&Request::Hello { requested })? {
            Response::Hello { version } => Ok(version),
            other => Err(unexpected("hello", other)),
        }
    }

    /// Loads (or replaces) a named instance from `mf_core::textio` instance
    /// text; returns its (tasks, machines, types) shape.
    pub fn load(
        &mut self,
        name: &str,
        instance_text: &str,
    ) -> Result<(usize, usize, usize), ClientError> {
        let request = Request::Load {
            name: name.to_string(),
            payload: crate::proto::text_payload(instance_text),
        };
        match self.expect(&request)? {
            Response::Loaded {
                tasks,
                machines,
                types,
                ..
            } => Ok((tasks, machines, types)),
            other => Err(unexpected("load", other)),
        }
    }

    /// Drops a named instance from the store.
    pub fn unload(&mut self, name: &str) -> Result<(), ClientError> {
        match self.expect(&Request::Unload {
            name: name.to_string(),
        })? {
            Response::Unloaded { .. } => Ok(()),
            other => Err(unexpected("unload", other)),
        }
    }

    /// The resident instances, sorted by name.
    pub fn list(&mut self) -> Result<Vec<InstanceInfo>, ClientError> {
        match self.expect(&Request::List)? {
            Response::List(entries) => Ok(entries),
            other => Err(unexpected("list", other)),
        }
    }

    /// Evaluates a mapping against a resident instance.
    pub fn evaluate(&mut self, name: &str, mapping: &Mapping) -> Result<Evaluation, ClientError> {
        let request = Request::Evaluate {
            name: name.to_string(),
            payload: crate::proto::text_payload(&textio::mapping_to_text(mapping)),
        };
        match self.expect(&request)? {
            Response::Evaluated {
                period,
                critical,
                loads,
            } => Ok(Evaluation {
                period,
                critical,
                loads,
            }),
            other => Err(unexpected("evaluate", other)),
        }
    }

    /// Probes a move/swap against the session's resident evaluator state;
    /// returns the candidate (period, critical machine).
    pub fn what_if(&mut self, name: &str, probe: Probe) -> Result<(f64, usize), ClientError> {
        match self.expect(&Request::WhatIf {
            name: name.to_string(),
            probe,
        })? {
            Response::WhatIf { period, critical } => Ok((period, critical)),
            other => Err(unexpected("whatif", other)),
        }
    }

    /// Solves a resident instance.
    pub fn solve(
        &mut self,
        name: &str,
        method: SolveMethod,
        seed: Option<u64>,
    ) -> Result<Solution, ClientError> {
        match self.expect(&Request::Solve {
            name: name.to_string(),
            method,
            seed,
        })? {
            Response::Solved {
                label,
                period,
                machines,
                assignment,
            } => {
                let mapping = Mapping::from_indices(&assignment, machines).map_err(|e| {
                    ClientError::Proto(ProtoError::Malformed {
                        detail: format!("solve answer is not a mapping: {e}"),
                    })
                })?;
                Ok(Solution {
                    label,
                    period,
                    mapping,
                })
            }
            other => Err(unexpected("solve", other)),
        }
    }

    /// Runs the anytime incumbent/bound race on a resident instance (v3
    /// sessions only): the answer carries every streamed `gap` report plus
    /// the final mapping. `None` budget/seed use the server defaults.
    pub fn solve_anytime(
        &mut self,
        name: &str,
        budget: Option<u64>,
        seed: Option<u64>,
    ) -> Result<AnytimeSolution, ClientError> {
        match self.expect(&Request::Solve {
            name: name.to_string(),
            method: SolveMethod::Anytime { budget },
            seed,
        })? {
            Response::SolvedAnytime {
                reports,
                period,
                machines,
                assignment,
            } => {
                let mapping = Mapping::from_indices(&assignment, machines).map_err(|e| {
                    ClientError::Proto(ProtoError::Malformed {
                        detail: format!("solve-anytime answer is not a mapping: {e}"),
                    })
                })?;
                Ok(AnytimeSolution {
                    reports,
                    period,
                    mapping,
                })
            }
            other => Err(unexpected("solve-anytime", other)),
        }
    }

    /// The statistics counters, in the server's fixed presentation order
    /// (16 keys on v1 sessions, plus the cache counters after a v2
    /// `hello`).
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.expect(&Request::Stats)? {
            Response::Stats(entries) => Ok(entries),
            other => Err(unexpected("stats", other)),
        }
    }

    /// The full machine-readable statistics report as one JSON document
    /// (v2 sessions only).
    pub fn status_export(&mut self) -> Result<String, ClientError> {
        match self.expect(&Request::StatusExport)? {
            Response::StatusExport(lines) => {
                let mut document = lines.join("\n");
                document.push('\n');
                Ok(document)
            }
            other => Err(unexpected("status-export", other)),
        }
    }

    /// Ships a batch envelope (v2 sessions only); the answers come back in
    /// request order, errors in place as [`Response::Error`] values.
    pub fn batch(&mut self, items: Vec<Request>) -> Result<Vec<Response>, ClientError> {
        match self.expect(&Request::Batch(items))? {
            Response::Batch(answers) => Ok(answers),
            other => Err(unexpected("batch", other)),
        }
    }

    /// Ends the session and asks the server to stop accepting connections.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.expect(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            other => Err(unexpected("shutdown", other)),
        }
    }
}

fn unexpected(expected: &'static str, got: Response) -> ClientError {
    ClientError::Unexpected {
        expected,
        got: format!("{got:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use mf_core::textio;
    use mf_sim::{GeneratorConfig, InstanceGenerator};

    #[test]
    fn connect_refuses_non_protocol_peers() {
        // A listener that greets wrongly.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream.write_all(b"hello there\n").unwrap();
        });
        let err = Client::connect(addr).unwrap_err();
        assert!(matches!(err, ClientError::BadGreeting(_)), "{err}");
        peer.join().unwrap();
    }

    #[test]
    fn typed_round_trip_against_a_live_server() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let mut client = Client::connect(addr).unwrap();

        assert_eq!(client.hello(2).unwrap(), ProtoVersion::V2);
        let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(6, 3, 2))
            .generate(1)
            .unwrap();
        let text = textio::instance_to_text(&instance);
        assert_eq!(client.load("a", &text).unwrap(), (6, 3, 2));
        let names: Vec<String> = client
            .list()
            .unwrap()
            .into_iter()
            .map(|info| info.name)
            .collect();
        assert_eq!(names, ["a"]);

        let solution = client
            .solve("a", SolveMethod::Heuristic("h4w".into()), None)
            .unwrap();
        assert_eq!(solution.label, "H4w");
        let evaluation = client.evaluate("a", &solution.mapping).unwrap();
        assert_eq!(
            evaluation.period.to_bits(),
            solution.period.to_bits(),
            "evaluate must agree with solve bit-for-bit"
        );
        let (probed, _) = client.what_if("a", Probe::Swap { a: 0, b: 1 }).unwrap();
        assert!(probed.is_finite());

        // Typed errors surface as ClientError::Server with the wire code.
        let err = client.unload("missing").unwrap_err();
        assert!(
            matches!(
                err,
                ClientError::Server {
                    code: ErrorCode::UnknownInstance,
                    ..
                }
            ),
            "{err}"
        );

        // The raw escape hatch speaks the same session.
        let response = client.send_line("list").unwrap();
        assert!(matches!(response, Response::List(_)), "{response:?}");

        // A v3 upgrade unlocks the anytime race; the streamed reports are
        // monotone and the final mapping re-evaluates to the answer period.
        assert_eq!(client.hello(3).unwrap(), ProtoVersion::V3);
        let anytime = client.solve_anytime("a", Some(50_000), None).unwrap();
        assert!(!anytime.reports.is_empty());
        assert_eq!(anytime.reports[0].phase, "seed");
        for pair in anytime.reports.windows(2) {
            assert!(pair[1].period <= pair[0].period);
            assert!(pair[1].bound >= pair[0].bound);
        }
        let evaluation = client.evaluate("a", &anytime.mapping).unwrap();
        assert_eq!(evaluation.period.to_bits(), anytime.period.to_bits());

        let stats = client.stats().unwrap();
        assert!(
            stats.iter().any(|(key, _)| key == "evaluate-cache-misses"),
            "v2 session must see cache counters: {stats:?}"
        );
        let json = client.status_export().unwrap();
        assert!(json.contains("\"format\": \"mf-stats v1\""), "{json}");

        client.unload("a").unwrap();
        client.shutdown().unwrap();
        drop(client);
        handle.join().unwrap();
    }
}
