//! Request dispatch: the bridge between `mf-proto v1` and the solver stack.
//!
//! One [`Engine`] is shared by every session of a server process. It owns the
//! resident [`InstanceStore`], the shared [`BatchRunner`] rayon pool the
//! portfolio races on, and the statistics counters. Each connection gets its
//! own [`Session`], which carries the **resident evaluator state**: after an
//! `evaluate` or `solve` on an instance, the session keeps the committed
//! [`EvaluatorSnapshot`] of that mapping, and later `whatif` probes resume it
//! in `O(1)` — no demand walk, no load rebuild — answering move/swap
//! questions in `O(affected tasks + log m)`.
//!
//! # Equivalence with the one-shot CLI
//!
//! Every answer is a pure function of (instance, request, seed) and uses the
//! same defaults as the `microfactory` CLI — `solve … heuristic` seeds its
//! heuristic with `1`, `solve … portfolio` runs `PortfolioConfig::default()`
//! (whose outcome is bit-identical for every thread count) — so server
//! responses are **bit-identical** to the equivalent one-shot run. The
//! `serve_equivalence` integration test pins this against the real CLI
//! binary.

use crate::cache::{CachedEvaluation, EvaluateCache};
use crate::errors::EngineError;
use crate::journal::{Journal, JournalResult, RecoveredInstance};
use crate::obs::{ObsConfig, ObsState};
use crate::proto::{GapReport, InstanceInfo, Probe, ProtoVersion, Request, Response, SolveMethod};
use crate::stats::StatsReport;
use crate::store::{InstanceStore, StoredInstance};
use mf_core::prelude::*;
use mf_core::textio;
use mf_experiments::anytime::{solve_anytime_observed, AnytimeConfig};
use mf_experiments::portfolio::{run_portfolio, PortfolioConfig};
use mf_experiments::runner::BatchRunner;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Default seed of `solve … heuristic` requests — the seed the CLI's
/// `--heuristic` path hard-codes, so un-seeded requests match it exactly.
pub const DEFAULT_HEURISTIC_SEED: u64 = 1;

/// Most resident evaluator snapshots one session keeps; the
/// least-recently-used snapshot is dropped past this (a snapshot is ~the
/// instance's per-task vectors plus the mass-row cache, so an unbounded map
/// would grow with every instance a long-lived dashboard session touches).
pub const SESSION_SNAPSHOT_CAP: usize = 8;

#[derive(Debug, Default)]
struct Counters {
    loads: AtomicU64,
    unloads: AtomicU64,
    evaluations: AtomicU64,
    whatifs: AtomicU64,
    resumes: AtomicU64,
    snapshot_hits: AtomicU64,
    snapshot_evictions: AtomicU64,
    solves_heuristic: AtomicU64,
    solves_portfolio: AtomicU64,
    solves_anytime: AtomicU64,
    /// `gap` lines streamed by anytime solves (incumbent/bound reports).
    anytime_reports: AtomicU64,
    /// Anytime solves that closed the gap (proven optimal within budget).
    anytime_proven: AtomicU64,
    /// Branch-and-bound nodes explored by anytime solves.
    bnb_nodes: AtomicU64,
    /// LP relaxations solved from scratch / warm-reused by anytime solves.
    lp_solves: AtomicU64,
    lp_reuses: AtomicU64,
    sessions: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    /// `IncrementalEvaluator::new` calls — what the keyed evaluate cache
    /// saves; a cache hit serves an `evaluate` without bumping this.
    builds: AtomicU64,
    /// What-ifs answered by the evaluator's dense prefix-mass fast path —
    /// summed over resident `whatif` probes and search-driven solves.
    whatif_dense: AtomicU64,
    /// What-ifs answered by the exact ancestor walk (degenerate shapes).
    whatif_exact: AtomicU64,
    /// Mass rows (re)built by the dense path — what the per-tour-range
    /// invalidation and warm resident snapshots save.
    mass_row_builds: AtomicU64,
    /// Sweep-cache counters of search-driven solves (SD/TS/H6 registry
    /// names): probes routed through the cache, probes that had to call
    /// the evaluator, bound-certified skips, exact-score reuses, and skips
    /// certified through a ratio-rescaled (delta-transfer) bound.
    sweep_probes: AtomicU64,
    sweep_evaluations: AtomicU64,
    sweep_skips: AtomicU64,
    sweep_reuses: AtomicU64,
    sweep_rescales: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) -> u64 {
        counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn add(counter: &AtomicU64, n: u64) {
        if n > 0 {
            counter.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Folds the evaluator-counter *delta* of one operation in.
    fn add_eval_delta(&self, after: EvalCounters, before: EvalCounters) {
        Counters::add(
            &self.whatif_dense,
            after.dense_what_ifs - before.dense_what_ifs,
        );
        Counters::add(
            &self.whatif_exact,
            after.exact_what_ifs - before.exact_what_ifs,
        );
        Counters::add(
            &self.mass_row_builds,
            after.mass_row_builds - before.mass_row_builds,
        );
    }
}

/// Session-scoped resident evaluator state for one instance.
struct ResidentState {
    /// The store generation the snapshot was built against; a reload (or
    /// unload + load) of the name invalidates the snapshot.
    generation: u64,
    snapshot: EvaluatorSnapshot,
    /// Session-local recency stamp (for the [`SESSION_SNAPSHOT_CAP`] LRU).
    last_used: u64,
}

/// Per-connection state: the negotiated protocol version plus the resident
/// evaluator snapshots of this session, capped at [`SESSION_SNAPSHOT_CAP`]
/// by recency.
#[derive(Default)]
pub struct Session {
    resident: HashMap<String, ResidentState>,
    clock: u64,
    version: ProtoVersion,
}

impl Session {
    /// The protocol version this session speaks (v1 until a `hello`
    /// upgrades it).
    pub fn version(&self) -> ProtoVersion {
        self.version
    }

    /// Overwrites the version slot. The router negotiates `hello` itself
    /// and copies the result onto its worker sessions, so engine-level
    /// version gates see what the client negotiated.
    pub(crate) fn sync_version(&mut self, version: ProtoVersion) {
        self.version = version;
    }
}

/// Negotiates a `hello` against a session's version slot — the one
/// handshake implementation the engine and the router share, so their
/// responses are byte-identical.
pub(crate) fn hello_response(requested: u32, slot: &mut ProtoVersion) -> Response {
    match ProtoVersion::negotiate(requested) {
        Some(version) => {
            *slot = version;
            Response::Hello { version }
        }
        None => EngineError::UnsupportedVersion { requested }.into_response(),
    }
}

/// Rejects a v2-only command on a v1 session with the stable
/// version-required error (shared by the engine and the router).
pub(crate) fn gate_v2(
    version: ProtoVersion,
    command: &'static str,
) -> std::result::Result<(), Response> {
    if version >= ProtoVersion::V2 {
        Ok(())
    } else {
        Err(EngineError::VersionRequired {
            command,
            needs: ProtoVersion::V2,
        }
        .into_response())
    }
}

/// Rejects a v3-only command on an older session with the stable
/// version-required error (shared by the engine and the router).
pub(crate) fn gate_v3(
    version: ProtoVersion,
    command: &'static str,
) -> std::result::Result<(), Response> {
    if version >= ProtoVersion::V3 {
        Ok(())
    } else {
        Err(EngineError::VersionRequired {
            command,
            needs: ProtoVersion::V3,
        }
        .into_response())
    }
}

/// The shared dispatch engine of a server process.
pub struct Engine {
    store: InstanceStore,
    runner: BatchRunner,
    counters: Counters,
    cache: EvaluateCache,
    /// The durable log of store mutations, when the server runs with a
    /// data directory. `None` keeps the engine fully in-memory with zero
    /// overhead on the load path.
    journal: Option<Arc<Journal>>,
    /// Serializes (apply in memory, append to journal) pairs so the journal
    /// replays to exactly the store's mutation order. Only taken when a
    /// journal is attached.
    durable: Mutex<()>,
    /// Request-latency histograms, span tracing, and the slow-request log.
    obs: ObsState,
}

impl Engine {
    /// An engine whose portfolio pool uses `threads` workers (`0` = one per
    /// CPU, capped at 16 — the workspace-wide convention).
    pub fn new(threads: usize) -> Self {
        Engine::with_observability(threads, ObsConfig::default())
    }

    /// [`Engine::new`] with explicit observability wiring: an injected
    /// clock, an optional `mf-trace v1` writer, and the slow-request
    /// threshold. Observability never changes a response byte.
    pub fn with_observability(threads: usize, obs: ObsConfig) -> Self {
        Engine::with_journal(threads, None, obs)
    }

    /// A durable engine: opens (or creates) the `mf-journal v1` under
    /// `data_dir`, replays every live instance into the store, and resumes
    /// the generation counter strictly above every generation ever issued —
    /// so a keyed evaluate-cache entry can never alias a pre-restart
    /// instance.
    pub fn open(threads: usize, data_dir: impl AsRef<Path>) -> JournalResult<Engine> {
        Engine::open_with_observability(threads, data_dir, ObsConfig::default())
    }

    /// [`Engine::open`] with explicit observability wiring.
    pub fn open_with_observability(
        threads: usize,
        data_dir: impl AsRef<Path>,
        obs: ObsConfig,
    ) -> JournalResult<Engine> {
        let journal = Arc::new(Journal::open(data_dir)?);
        let engine = Engine::with_journal(threads, Some(Arc::clone(&journal)), obs);
        for recovered in journal.live_instances() {
            engine.adopt(recovered)?;
        }
        engine.finish_replay();
        Ok(engine)
    }

    /// An engine wired to an already-open journal — shared by [`Engine::open`]
    /// and the router's durable constructor (which hands one journal to many
    /// worker shards). The caller is responsible for replaying
    /// [`Journal::live_instances`] via [`Engine::adopt`] and then calling
    /// [`Engine::finish_replay`].
    pub(crate) fn with_journal(
        threads: usize,
        journal: Option<Arc<Journal>>,
        obs: ObsConfig,
    ) -> Self {
        Engine {
            store: InstanceStore::new(),
            runner: BatchRunner::new(threads),
            counters: Counters::default(),
            cache: EvaluateCache::new(),
            journal,
            durable: Mutex::new(()),
            obs: ObsState::new(obs),
        }
    }

    /// Replays one journaled instance into the store, pinned at its
    /// journaled generation. Payloads that no longer parse (a foreign edit
    /// of the journal file) are dropped from the journal rather than
    /// resurrected; replay evictions (recovered set larger than the byte
    /// cap) are journaled like live evictions so the log stays exact.
    pub(crate) fn adopt(&self, recovered: RecoveredInstance) -> JournalResult<()> {
        let RecoveredInstance {
            name,
            generation,
            payload,
        } = recovered;
        match textio::instance_from_text(&payload.join("\n")) {
            Ok(instance) => {
                let (_, evicted) = self.store.insert_pinned(&name, instance, generation);
                if let Some(journal) = &self.journal {
                    for gone in &evicted {
                        journal.record_unload(gone)?;
                    }
                }
            }
            Err(_) => {
                if let Some(journal) = &self.journal {
                    journal.record_unload(&name)?;
                }
            }
        }
        Ok(())
    }

    /// Completes a replay: fast-forwards the store's generation counter to
    /// the journal's high-water mark, so every generation issued after the
    /// restart is strictly above every generation issued before it.
    pub(crate) fn finish_replay(&self) {
        if let Some(journal) = &self.journal {
            self.store.reserve_generations(journal.mark());
        }
    }

    /// The attached journal, when this engine is durable.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// The mutation-order lock of a durable engine (`None` when there is no
    /// journal: in-memory loads stay lock-free).
    fn durable_guard(&self) -> Option<MutexGuard<'_, ()>> {
        self.journal
            .as_ref()
            .map(|_| self.durable.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// The resident instance store.
    pub fn store(&self) -> &InstanceStore {
        &self.store
    }

    /// The shared solver pool.
    pub fn runner(&self) -> &BatchRunner {
        &self.runner
    }

    /// The keyed evaluate cache.
    pub fn cache(&self) -> &EvaluateCache {
        &self.cache
    }

    /// Starts a session (counted in `stats`).
    pub fn begin_session(&self) -> Session {
        Counters::bump(&self.counters.sessions);
        Session::default()
    }

    /// Dispatches one request against the shared store and the session's
    /// resident state.
    pub fn dispatch(&self, session: &mut Session, request: Request) -> Response {
        Counters::bump(&self.counters.requests);
        let keyword = request.keyword();
        let start_ns = self.obs.now_ns();
        let response = self.handle(session, request);
        self.obs.observe_request(keyword, start_ns);
        if matches!(response, Response::Error { .. }) {
            Counters::bump(&self.counters.errors);
        }
        response
    }

    fn handle(&self, session: &mut Session, request: Request) -> Response {
        match request {
            Request::Hello { requested } => hello_response(requested, &mut session.version),
            Request::Batch(items) => match gate_v2(session.version, "batch") {
                Ok(()) => Response::Batch(
                    items
                        .into_iter()
                        .map(|item| self.dispatch_batch_item(session, item))
                        .collect(),
                ),
                Err(response) => response,
            },
            Request::StatusExport => match gate_v2(session.version, "status-export") {
                Ok(()) => Response::StatusExport(self.status_report().json_lines()),
                Err(response) => response,
            },
            Request::Load { name, payload } => self.load(session, &name, &payload),
            Request::Unload { name } => self.unload(session, &name),
            Request::List => Response::List(
                self.store
                    .snapshot()
                    .iter()
                    .map(|stored| InstanceInfo {
                        name: stored.name.clone(),
                        tasks: stored.tasks(),
                        machines: stored.machines(),
                        types: stored.types(),
                    })
                    .collect(),
            ),
            Request::Evaluate { name, payload } => self.evaluate(session, &name, &payload),
            Request::WhatIf { name, probe } => self.what_if(session, &name, probe),
            Request::Solve { name, method, seed } => self.solve(session, &name, &method, seed),
            Request::Stats => Response::Stats(self.stats_for(session.version)),
            Request::Shutdown => Response::Shutdown,
        }
    }

    /// Dispatches one command riding a `batch` envelope. Every item counts
    /// as a request (the envelope itself counted separately), non-instance
    /// commands answer the stable not-batchable error, and error answers
    /// count as errors — so a batched script moves the counters exactly as
    /// the same commands sent one per round trip.
    pub(crate) fn dispatch_batch_item(&self, session: &mut Session, item: Request) -> Response {
        Counters::bump(&self.counters.requests);
        let keyword = item.keyword();
        let start_ns = self.obs.now_ns();
        let response = if item.instance_name().is_none() {
            EngineError::NotBatchable { command: keyword }.into_response()
        } else {
            self.handle(session, item)
        };
        self.obs.observe_request(keyword, start_ns);
        if matches!(response, Response::Error { .. }) {
            Counters::bump(&self.counters.errors);
        }
        response
    }

    fn load(&self, session: &mut Session, name: &str, payload: &[String]) -> Response {
        let text = payload.join("\n");
        let instance = match textio::instance_from_text(&text) {
            Ok(instance) => instance,
            Err(e) => {
                return EngineError::InvalidPayload {
                    detail: one_line(e),
                }
                .into_response()
            }
        };
        let (stored, journaled) = {
            let _guard = self.durable_guard();
            let (stored, evicted) = self.store.insert_tracked(name, instance);
            let journaled = match &self.journal {
                Some(journal) => journal
                    .record_load(name, stored.generation, payload)
                    .and_then(|()| {
                        evicted
                            .iter()
                            .try_for_each(|gone| journal.record_unload(gone))
                    }),
                None => Ok(()),
            };
            (stored, journaled)
        };
        // A replacement invalidates this session's snapshot immediately;
        // other sessions' snapshots die lazily via the generation check, and
        // cached evaluations of older generations can never hit again —
        // purging just frees them eagerly.
        session.resident.remove(name);
        self.cache.purge(name);
        // The load counter tracks applied store mutations, so it moves even
        // when journaling the mutation fails (the load is live in memory —
        // only its durability is gone).
        Counters::bump(&self.counters.loads);
        if let Err(error) = journaled {
            return EngineError::JournalFailed {
                detail: one_line(error),
            }
            .into_response();
        }
        Response::Loaded {
            name: name.to_string(),
            tasks: stored.tasks(),
            machines: stored.machines(),
            types: stored.types(),
        }
    }

    fn unload(&self, session: &mut Session, name: &str) -> Response {
        let (removed, journaled) = {
            let _guard = self.durable_guard();
            let removed = self.store.remove(name);
            let journaled = match &self.journal {
                Some(journal) if removed => journal.record_unload(name),
                _ => Ok(()),
            };
            (removed, journaled)
        };
        if removed {
            session.resident.remove(name);
            self.cache.purge(name);
            // Counted on apply, not on durability — see `load`.
            Counters::bump(&self.counters.unloads);
            if let Err(error) = journaled {
                return EngineError::JournalFailed {
                    detail: one_line(error),
                }
                .into_response();
            }
            Response::Unloaded {
                name: name.to_string(),
            }
        } else {
            EngineError::UnknownInstance {
                name: name.to_string(),
            }
            .into_response()
        }
    }

    /// Parks a snapshot as the session's resident state for `name`,
    /// evicting the session's least-recently-used snapshot past
    /// [`SESSION_SNAPSHOT_CAP`].
    fn remember(
        &self,
        session: &mut Session,
        name: &str,
        generation: u64,
        snapshot: EvaluatorSnapshot,
    ) {
        session.clock += 1;
        if !session.resident.contains_key(name) && session.resident.len() >= SESSION_SNAPSHOT_CAP {
            if let Some(coldest) = session
                .resident
                .iter()
                .min_by_key(|(_, state)| state.last_used)
                .map(|(key, _)| key.clone())
            {
                session.resident.remove(&coldest);
                Counters::bump(&self.counters.snapshot_evictions);
            }
        }
        session.resident.insert(
            name.to_string(),
            ResidentState {
                generation,
                snapshot,
                last_used: session.clock,
            },
        );
    }

    fn fetch(&self, name: &str) -> std::result::Result<std::sync::Arc<StoredInstance>, Response> {
        self.store.get(name).ok_or_else(|| {
            EngineError::UnknownInstance {
                name: name.to_string(),
            }
            .into_response()
        })
    }

    /// Builds the evaluator for `(instance, mapping)` — the committed state
    /// `evaluate` answers from — and parks the full answer in the keyed
    /// cache under `(generation, fingerprint)`.
    fn build_evaluation(
        &self,
        name: &str,
        stored: &StoredInstance,
        mapping: &Mapping,
        fingerprint: u64,
    ) -> std::result::Result<CachedEvaluation, String> {
        let evaluator = IncrementalEvaluator::new(&stored.instance, mapping).map_err(one_line)?;
        Counters::bump(&self.counters.builds);
        let cached = CachedEvaluation {
            period: evaluator.period().value(),
            critical: evaluator.critical_machine().index(),
            loads: evaluator.loads().to_vec(),
            snapshot: evaluator.into_snapshot(),
        };
        self.cache
            .insert(name, stored.generation, fingerprint, cached.clone());
        Ok(cached)
    }

    fn evaluate(&self, session: &mut Session, name: &str, payload: &[String]) -> Response {
        let stored = match self.fetch(name) {
            Ok(stored) => stored,
            Err(response) => return response,
        };
        let text = payload.join("\n");
        let mapping = match textio::mapping_from_text(&text) {
            Ok(mapping) => mapping,
            Err(e) => {
                return EngineError::InvalidPayload {
                    detail: one_line(e),
                }
                .into_response()
            }
        };
        if let Err(e) = stored
            .instance
            .validate_mapping(&mapping, MappingKind::General)
        {
            return EngineError::MappingMismatch {
                detail: one_line(e),
            }
            .into_response();
        }
        // The evaluator's initial state is computed with the exact operations
        // of a full `machine_periods` evaluation, so the response is
        // bit-identical to the one-shot CLI path — and the committed state
        // doubles as this session's resident snapshot for `whatif` probes.
        // A keyed-cache hit serves the identical answer (and the identical
        // pristine snapshot) without building the evaluator at all.
        let fingerprint = mapping.fingerprint();
        let evaluation = match self.cache.lookup(name, stored.generation, fingerprint) {
            Some(hit) => hit,
            None => match self.build_evaluation(name, &stored, &mapping, fingerprint) {
                Ok(built) => built,
                Err(detail) => return EngineError::InvalidPayload { detail }.into_response(),
            },
        };
        Counters::bump(&self.counters.evaluations);
        let response = Response::Evaluated {
            period: evaluation.period,
            critical: evaluation.critical,
            loads: evaluation.loads,
        };
        self.remember(session, name, stored.generation, evaluation.snapshot);
        response
    }

    fn what_if(&self, session: &mut Session, name: &str, probe: Probe) -> Response {
        let stored = match self.fetch(name) {
            Ok(stored) => stored,
            Err(response) => return response,
        };
        let stale = EngineError::NoResidentState {
            name: name.to_string(),
        }
        .into_response();
        let Some(state) = session.resident.remove(name) else {
            return stale;
        };
        if state.generation != stored.generation {
            // The instance was reloaded since the snapshot was taken.
            return stale;
        }
        Counters::bump(&self.counters.snapshot_hits);
        let mut evaluator = match IncrementalEvaluator::resume(&stored.instance, state.snapshot) {
            Ok(evaluator) => evaluator,
            Err(e) => {
                return EngineError::BadRequest {
                    detail: one_line(e),
                }
                .into_response()
            }
        };
        Counters::bump(&self.counters.resumes);
        // The evaluator's counters are cumulative and ride the snapshot, so
        // the probe's own cost is the delta across the call.
        let counters_before = evaluator.counters();
        let evaluation = match probe {
            Probe::Move { task, machine } => {
                evaluator.evaluate_move(TaskId(task), MachineId(machine))
            }
            Probe::Swap { a, b } => evaluator.evaluate_swap(TaskId(a), TaskId(b)),
        };
        self.counters
            .add_eval_delta(evaluator.counters(), counters_before);
        // What-ifs never mutate committed state, so the snapshot stays valid
        // either way — keep it resident even when the probe was out of range.
        let response = match evaluation {
            Ok(evaluation) => {
                Counters::bump(&self.counters.whatifs);
                Response::WhatIf {
                    period: evaluation.period.value(),
                    critical: evaluation.critical_machine.index(),
                }
            }
            Err(e) => EngineError::BadRequest {
                detail: one_line(e),
            }
            .into_response(),
        };
        self.remember(session, name, stored.generation, evaluator.into_snapshot());
        response
    }

    fn solve(
        &self,
        session: &mut Session,
        name: &str,
        method: &SolveMethod,
        seed: Option<u64>,
    ) -> Response {
        let stored = match self.fetch(name) {
            Ok(stored) => stored,
            Err(response) => return response,
        };
        if let SolveMethod::Anytime { budget } = method {
            return self.solve_anytime(session, name, &stored, *budget, seed);
        }
        let instance = &stored.instance;
        let (label, mapping) = match method {
            SolveMethod::Heuristic(requested) => {
                let Some(canonical) = mf_heuristics::canonical_registry_name(requested) else {
                    return EngineError::UnknownHeuristic {
                        requested: requested.clone(),
                    }
                    .into_response();
                };
                let heuristic = mf_heuristics::paper_heuristic(
                    &canonical,
                    seed.unwrap_or(DEFAULT_HEURISTIC_SEED),
                )
                .expect("canonical names are constructible");
                match heuristic.map_traced(instance) {
                    Ok((mapping, telemetry)) => {
                        Counters::bump(&self.counters.solves_heuristic);
                        if let Some(telemetry) = telemetry {
                            // Search-driven solve: fold its sweep-cache and
                            // evaluator counters into the server totals.
                            let c = &self.counters;
                            Counters::add(&c.sweep_probes, telemetry.sweep.probes);
                            Counters::add(&c.sweep_evaluations, telemetry.sweep.evaluations);
                            Counters::add(&c.sweep_skips, telemetry.sweep.skips);
                            Counters::add(&c.sweep_reuses, telemetry.sweep.reuses);
                            Counters::add(&c.sweep_rescales, telemetry.sweep.rescales);
                            self.counters
                                .add_eval_delta(telemetry.eval, EvalCounters::default());
                        }
                        (canonical, mapping)
                    }
                    Err(e) => {
                        return EngineError::SolverFailed {
                            label: canonical,
                            detail: one_line(e),
                        }
                        .into_response()
                    }
                }
            }
            SolveMethod::Portfolio => {
                let config = PortfolioConfig {
                    base_seed: seed.unwrap_or(PortfolioConfig::default().base_seed),
                    ..PortfolioConfig::default()
                };
                let outcome = run_portfolio(instance, &config, &self.runner);
                let (Some(winner), Some(mapping)) =
                    (outcome.winner_label(), outcome.best_mapping.clone())
                else {
                    return EngineError::PortfolioEmpty.into_response();
                };
                Counters::bump(&self.counters.solves_portfolio);
                (winner.to_string(), mapping)
            }
            SolveMethod::Anytime { .. } => unreachable!("handled above"),
        };
        // One evaluator build serves both the response period (its initial
        // state is bit-identical to the full `machine_periods` walk the CLI
        // does) and this session's resident state, so a client can
        // immediately probe `whatif` moves around the solution. The build is
        // keyed-cached too: re-solving to a mapping this engine has already
        // evaluated (or an `evaluate` of a solved mapping) is a cache hit.
        let fingerprint = mapping.fingerprint();
        let evaluation = match self.cache.lookup(name, stored.generation, fingerprint) {
            Some(hit) => hit,
            None => match self.build_evaluation(name, &stored, &mapping, fingerprint) {
                Ok(built) => built,
                Err(detail) => return EngineError::Infeasible { detail }.into_response(),
            },
        };
        let period = evaluation.period;
        self.remember(session, name, stored.generation, evaluation.snapshot);
        Response::Solved {
            label,
            period,
            machines: mapping.machine_count(),
            assignment: mapping.as_slice().iter().map(|u| u.index()).collect(),
        }
    }

    /// `solve … anytime` (v3): the deterministic incumbent/bound race of
    /// [`mf_experiments::anytime::solve_anytime`] under a step budget, its
    /// events answered as the `gap` lines of a streaming
    /// [`Response::SolvedAnytime`] block and mirrored into the trace file
    /// as `round` records. The solved mapping becomes this session's
    /// resident evaluator state, exactly like the other solve methods.
    fn solve_anytime(
        &self,
        session: &mut Session,
        name: &str,
        stored: &StoredInstance,
        budget: Option<u64>,
        seed: Option<u64>,
    ) -> Response {
        if let Err(response) = gate_v3(session.version, "solve") {
            return response;
        }
        let mut config = AnytimeConfig::default();
        if let Some(budget) = budget {
            config.step_budget = budget;
        }
        if let Some(seed) = seed {
            config.seed = seed;
        }
        let mut sink = TraceIncumbentSink { obs: &self.obs };
        let outcome =
            match solve_anytime_observed(&stored.instance, &config, &mut |_| {}, &mut sink) {
                Ok(outcome) => outcome,
                Err(e) => {
                    return EngineError::SolverFailed {
                        label: "anytime".to_string(),
                        detail: one_line(e),
                    }
                    .into_response()
                }
            };
        let c = &self.counters;
        Counters::bump(&c.solves_anytime);
        Counters::add(&c.anytime_reports, outcome.events.len() as u64);
        if outcome.proven_optimal {
            Counters::bump(&c.anytime_proven);
        }
        Counters::add(&c.bnb_nodes, outcome.nodes);
        Counters::add(&c.lp_solves, outcome.lp_solves);
        Counters::add(&c.lp_reuses, outcome.lp_reuses);
        let reports = outcome
            .events
            .iter()
            .map(|event| GapReport {
                phase: event.phase.label().to_string(),
                steps: event.steps,
                period: event.period,
                bound: event.bound,
                proven: event.proven,
            })
            .collect();
        let mapping = outcome.mapping;
        let fingerprint = mapping.fingerprint();
        let evaluation = match self.cache.lookup(name, stored.generation, fingerprint) {
            Some(hit) => hit,
            None => match self.build_evaluation(name, stored, &mapping, fingerprint) {
                Ok(built) => built,
                Err(detail) => return EngineError::Infeasible { detail }.into_response(),
            },
        };
        let period = evaluation.period;
        self.remember(session, name, stored.generation, evaluation.snapshot);
        Response::SolvedAnytime {
            reports,
            period,
            machines: mapping.machine_count(),
            assignment: mapping.as_slice().iter().map(|u| u.index()).collect(),
        }
    }

    /// The statistics counters a session of `version` sees, in fixed
    /// presentation order: the 16 v1 keys, plus — on v2 sessions — the
    /// evaluator-build and keyed evaluate-cache counters, followed by the
    /// evaluator what-if/mass-row counters and the search sweep-cache
    /// counters harvested from traced solves, plus — on v3 sessions — the
    /// anytime-solve counters (solves, streamed reports, proven runs, and
    /// the exact phase's node/LP work). Every key is a plain sum over the
    /// work done, so a router can aggregate worker lists index-aligned and
    /// stay byte-identical to a single-process server.
    pub fn stats_for(&self, version: ProtoVersion) -> Vec<(String, u64)> {
        let mut entries = self.stats();
        if version >= ProtoVersion::V2 {
            let read = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
            entries.push(("evaluator-builds".to_string(), read(&self.counters.builds)));
            entries.push(("evaluate-cache-hits".to_string(), self.cache.hits()));
            entries.push(("evaluate-cache-misses".to_string(), self.cache.misses()));
            entries.push((
                "evaluate-cache-evictions".to_string(),
                self.cache.evictions(),
            ));
            let c = &self.counters;
            entries.push(("whatif-dense".to_string(), read(&c.whatif_dense)));
            entries.push(("whatif-exact".to_string(), read(&c.whatif_exact)));
            entries.push(("mass-row-builds".to_string(), read(&c.mass_row_builds)));
            entries.push(("sweep-probes".to_string(), read(&c.sweep_probes)));
            entries.push(("sweep-evaluations".to_string(), read(&c.sweep_evaluations)));
            entries.push(("sweep-skips".to_string(), read(&c.sweep_skips)));
            entries.push(("sweep-reuses".to_string(), read(&c.sweep_reuses)));
            entries.push(("sweep-rescales".to_string(), read(&c.sweep_rescales)));
        }
        if version >= ProtoVersion::V3 {
            let read = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
            let c = &self.counters;
            entries.push(("solves-anytime".to_string(), read(&c.solves_anytime)));
            entries.push(("anytime-reports".to_string(), read(&c.anytime_reports)));
            entries.push(("anytime-proven".to_string(), read(&c.anytime_proven)));
            entries.push(("bnb-nodes".to_string(), read(&c.bnb_nodes)));
            entries.push(("lp-solves".to_string(), read(&c.lp_solves)));
            entries.push(("lp-reuses".to_string(), read(&c.lp_reuses)));
        }
        entries
    }

    /// The full machine-readable report: the complete (v3) counter list as
    /// both the global and the single worker's list (a one-engine server
    /// **is** its only worker), plus — on durable engines — the journal's
    /// recovery counters.
    pub fn status_report(&self) -> StatsReport {
        let stats = self.stats_for(ProtoVersion::V3);
        StatsReport {
            recovery: self
                .journal
                .as_ref()
                .map(|journal| journal.status_counters())
                .unwrap_or_default(),
            global: stats.clone(),
            histograms: self.histograms(),
            workers: vec![stats],
        }
    }

    /// Snapshots the per-command request-latency histograms, in
    /// [`TRACKED_COMMANDS`](crate::obs::TRACKED_COMMANDS) order. Every
    /// bucket is a plain sum of the work this engine dispatched, so a
    /// router aggregates worker snapshots bucket-wise.
    pub fn histograms(&self) -> Vec<(String, mf_obs::HistogramSnapshot)> {
        self.obs.histograms()
    }

    /// The statistics counters, in fixed presentation order. Alongside the
    /// request counters, the store's byte footprint and hit/eviction counts
    /// and the session snapshot caches' hit/eviction counts make warm-cache
    /// behavior of a long-running server observable.
    pub fn stats(&self) -> Vec<(String, u64)> {
        let c = &self.counters;
        let store = self.store.stats();
        let read = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        vec![
            ("instances".to_string(), self.store.len() as u64),
            ("instance-bytes".to_string(), store.bytes),
            ("instance-hits".to_string(), store.hits),
            ("instance-evictions".to_string(), store.evictions),
            ("loads".to_string(), read(&c.loads)),
            ("unloads".to_string(), read(&c.unloads)),
            ("evaluations".to_string(), read(&c.evaluations)),
            ("whatifs".to_string(), read(&c.whatifs)),
            ("evaluator-resumes".to_string(), read(&c.resumes)),
            ("snapshot-hits".to_string(), read(&c.snapshot_hits)),
            (
                "snapshot-evictions".to_string(),
                read(&c.snapshot_evictions),
            ),
            ("solves-heuristic".to_string(), read(&c.solves_heuristic)),
            ("solves-portfolio".to_string(), read(&c.solves_portfolio)),
            ("sessions".to_string(), read(&c.sessions)),
            ("requests".to_string(), read(&c.requests)),
            ("errors".to_string(), read(&c.errors)),
        ]
    }
}

/// Flattens an error's display onto one protocol line.
fn one_line(e: impl std::fmt::Display) -> String {
    e.to_string().replace(['\n', '\r'], " ")
}

/// Mirrors anytime incumbent/bound improvements into the engine's trace
/// file as `round` records. Tracing off makes this a no-op, and the trace
/// never changes a response byte.
struct TraceIncumbentSink<'a> {
    obs: &'a ObsState,
}

impl mf_obs::ProgressSink for TraceIncumbentSink<'_> {
    fn emit(&mut self, event: mf_obs::ProgressEvent) {
        self.obs.trace_event(&event.into_trace(0, 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{text_payload, ErrorCode};
    use mf_heuristics::{H4wFastestMachine, Heuristic};
    use mf_sim::{GeneratorConfig, InstanceGenerator};

    fn instance_text(tasks: usize, machines: usize, types: usize, seed: u64) -> String {
        let instance =
            InstanceGenerator::new(GeneratorConfig::paper_standard(tasks, machines, types))
                .generate(seed)
                .unwrap();
        textio::instance_to_text(&instance)
    }

    fn load(engine: &Engine, session: &mut Session, name: &str, text: &str) {
        let response = engine.dispatch(
            session,
            Request::Load {
                name: name.into(),
                payload: text_payload(text),
            },
        );
        assert!(matches!(response, Response::Loaded { .. }), "{response:?}");
    }

    #[test]
    fn load_list_solve_evaluate_whatif_flow() {
        let engine = Engine::new(1);
        let mut session = engine.begin_session();
        let text = instance_text(8, 4, 2, 3);
        load(&engine, &mut session, "a", &text);

        let Response::List(entries) = engine.dispatch(&mut session, Request::List) else {
            panic!("list failed");
        };
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "a");
        assert_eq!(entries[0].tasks, 8);
        assert_eq!(entries[0].machines, 4);

        // Solve with H4w matches a direct run bit-for-bit.
        let Response::Solved {
            label,
            period,
            machines,
            assignment,
        } = engine.dispatch(
            &mut session,
            Request::Solve {
                name: "a".into(),
                method: SolveMethod::Heuristic("h4w".into()),
                seed: None,
            },
        )
        else {
            panic!("solve failed");
        };
        assert_eq!(label, "H4w");
        assert_eq!(machines, 4);
        let instance = textio::instance_from_text(&text).unwrap();
        let direct = H4wFastestMachine.map(&instance).unwrap();
        assert_eq!(
            assignment,
            direct
                .as_slice()
                .iter()
                .map(|u| u.index())
                .collect::<Vec<_>>()
        );
        assert_eq!(
            period.to_bits(),
            instance.period(&direct).unwrap().value().to_bits()
        );

        // Evaluate that mapping: bit-identical to the full breakdown.
        let mapping_text = textio::mapping_to_text(&direct);
        let Response::Evaluated {
            period: evaluated,
            critical,
            loads,
        } = engine.dispatch(
            &mut session,
            Request::Evaluate {
                name: "a".into(),
                payload: text_payload(&mapping_text),
            },
        )
        else {
            panic!("evaluate failed");
        };
        let breakdown = instance.machine_periods(&direct).unwrap();
        assert_eq!(
            evaluated.to_bits(),
            breakdown.system_period().value().to_bits()
        );
        for (u, load) in loads.iter().enumerate() {
            assert_eq!(load.to_bits(), breakdown.as_slice()[u].to_bits());
        }
        assert!(critical < 4);

        // Whatif resumes the resident evaluator and agrees with a fresh one.
        let Response::WhatIf {
            period: probed,
            critical: probed_critical,
        } = engine.dispatch(
            &mut session,
            Request::WhatIf {
                name: "a".into(),
                probe: Probe::Move {
                    task: 0,
                    machine: 1,
                },
            },
        )
        else {
            panic!("whatif failed");
        };
        let mut fresh = IncrementalEvaluator::new(&instance, &direct).unwrap();
        let expected = fresh.evaluate_move(TaskId(0), MachineId(1)).unwrap();
        assert_eq!(probed.to_bits(), expected.period.value().to_bits());
        assert_eq!(probed_critical, expected.critical_machine.index());

        // The stats counters saw all of it.
        let Response::Stats(stats) = engine.dispatch(&mut session, Request::Stats) else {
            panic!("stats failed");
        };
        let get = |key: &str| {
            stats
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("instances"), 1);
        assert_eq!(get("loads"), 1);
        assert_eq!(get("evaluations"), 1);
        assert_eq!(get("whatifs"), 1);
        assert_eq!(get("evaluator-resumes"), 1);
        assert_eq!(get("snapshot-hits"), 1);
        assert_eq!(get("snapshot-evictions"), 0);
        assert_eq!(get("solves-heuristic"), 1);
        assert_eq!(get("sessions"), 1);
        assert_eq!(get("errors"), 0);
        // The store saw one lookup per solve/evaluate/whatif.
        assert_eq!(get("instance-hits"), 3);
        assert_eq!(get("instance-evictions"), 0);
        assert!(get("instance-bytes") > 0);
    }

    #[test]
    fn anytime_solves_need_a_v3_hello_and_stream_monotone_reports() {
        let engine = Engine::new(1);
        let mut session = engine.begin_session();
        let text = instance_text(10, 5, 2, 7);
        load(&engine, &mut session, "a", &text);
        let anytime = |budget| Request::Solve {
            name: "a".into(),
            method: SolveMethod::Anytime { budget },
            seed: None,
        };

        // v1 and v2 sessions are refused with the stable gating error.
        for requested in [1, 2] {
            if requested > 1 {
                assert!(matches!(
                    engine.dispatch(&mut session, Request::Hello { requested }),
                    Response::Hello { .. }
                ));
            }
            let Response::Error { code, detail } = engine.dispatch(&mut session, anytime(None))
            else {
                panic!("anytime must be gated below v3");
            };
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(detail.contains("requires mf-proto v3"), "{detail}");
        }

        assert!(matches!(
            engine.dispatch(&mut session, Request::Hello { requested: 3 }),
            Response::Hello {
                version: ProtoVersion::V3
            }
        ));
        let Response::SolvedAnytime {
            reports,
            period,
            machines,
            assignment,
        } = engine.dispatch(&mut session, anytime(None))
        else {
            panic!("anytime solve failed");
        };
        assert!(!reports.is_empty());
        assert_eq!(reports[0].phase, "seed");
        assert_eq!(reports[0].steps, 0, "first report is the free seed");
        for pair in reports.windows(2) {
            assert!(pair[1].period <= pair[0].period);
            assert!(pair[1].bound >= pair[0].bound);
            assert!(pair[1].steps >= pair[0].steps);
            assert!(!pair[0].proven, "a proven report must be the last");
        }
        let last = reports.last().unwrap();
        assert_eq!(last.period.to_bits(), period.to_bits());

        // The answer is the anytime library outcome, bit for bit.
        let instance = textio::instance_from_text(&text).unwrap();
        let direct =
            mf_experiments::anytime::solve_anytime(&instance, &AnytimeConfig::default()).unwrap();
        assert_eq!(machines, 5);
        assert_eq!(
            assignment,
            direct
                .mapping
                .as_slice()
                .iter()
                .map(|u| u.index())
                .collect::<Vec<_>>()
        );
        assert_eq!(period.to_bits(), direct.period.value().to_bits());

        // The solved mapping is resident: whatif probes work immediately.
        assert!(matches!(
            engine.dispatch(
                &mut session,
                Request::WhatIf {
                    name: "a".into(),
                    probe: Probe::Swap { a: 0, b: 1 },
                },
            ),
            Response::WhatIf { .. }
        ));

        // The v3 counters saw the run.
        let stats = v2_stats(&engine, &mut session);
        assert_eq!(stat_of(&stats, "solves-anytime"), 1);
        assert_eq!(stat_of(&stats, "anytime-reports"), reports.len() as u64);
        assert_eq!(
            stat_of(&stats, "anytime-proven"),
            u64::from(direct.proven_optimal)
        );
        assert_eq!(stat_of(&stats, "bnb-nodes"), direct.nodes);
        assert_eq!(stat_of(&stats, "lp-solves"), direct.lp_solves);
        assert_eq!(stat_of(&stats, "lp-reuses"), direct.lp_reuses);
    }

    #[test]
    fn session_snapshot_cache_is_capped_by_recency() {
        let engine = Engine::new(1);
        let mut session = engine.begin_session();
        // One more instance than the cap; evaluating each in turn parks one
        // snapshot per name.
        let count = SESSION_SNAPSHOT_CAP + 1;
        for k in 0..count {
            let text = instance_text(6, 3, 2, k as u64 + 1);
            let name = format!("inst{k}");
            load(&engine, &mut session, &name, &text);
            let instance = textio::instance_from_text(&text).unwrap();
            let mapping = H4wFastestMachine.map(&instance).unwrap();
            let response = engine.dispatch(
                &mut session,
                Request::Evaluate {
                    name: name.clone(),
                    payload: text_payload(&textio::mapping_to_text(&mapping)),
                },
            );
            assert!(
                matches!(response, Response::Evaluated { .. }),
                "{response:?}"
            );
        }
        // The first (coldest) snapshot was evicted: whatif has no resident
        // state for it. The most recent one still answers.
        let probe = |session: &mut Session, name: &str| {
            engine.dispatch(
                session,
                Request::WhatIf {
                    name: name.into(),
                    probe: Probe::Move {
                        task: 0,
                        machine: 1,
                    },
                },
            )
        };
        let evicted = probe(&mut session, "inst0");
        assert!(
            matches!(
                evicted,
                Response::Error {
                    code: ErrorCode::NoResidentState,
                    ..
                }
            ),
            "{evicted:?}"
        );
        let warm = probe(&mut session, &format!("inst{}", count - 1));
        assert!(matches!(warm, Response::WhatIf { .. }), "{warm:?}");
        let Response::Stats(stats) = engine.dispatch(&mut session, Request::Stats) else {
            panic!("stats failed");
        };
        let get = |key: &str| {
            stats
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("snapshot-evictions"), 1);
        assert_eq!(get("snapshot-hits"), 1);
    }

    #[test]
    fn whatif_requires_resident_state_and_survives_bad_probes() {
        let engine = Engine::new(1);
        let mut session = engine.begin_session();
        load(&engine, &mut session, "a", &instance_text(6, 3, 2, 1));
        // No evaluate/solve yet.
        let response = engine.dispatch(
            &mut session,
            Request::WhatIf {
                name: "a".into(),
                probe: Probe::Move {
                    task: 0,
                    machine: 1,
                },
            },
        );
        assert!(
            matches!(
                response,
                Response::Error {
                    code: ErrorCode::NoResidentState,
                    ..
                }
            ),
            "{response:?}"
        );
        // Solve creates resident state; an out-of-range probe errors but the
        // state stays usable.
        let solved = engine.dispatch(
            &mut session,
            Request::Solve {
                name: "a".into(),
                method: SolveMethod::Heuristic("H2".into()),
                seed: None,
            },
        );
        assert!(matches!(solved, Response::Solved { .. }), "{solved:?}");
        let bad = engine.dispatch(
            &mut session,
            Request::WhatIf {
                name: "a".into(),
                probe: Probe::Move {
                    task: 99,
                    machine: 0,
                },
            },
        );
        assert!(
            matches!(
                bad,
                Response::Error {
                    code: ErrorCode::BadRequest,
                    ..
                }
            ),
            "{bad:?}"
        );
        let good = engine.dispatch(
            &mut session,
            Request::WhatIf {
                name: "a".into(),
                probe: Probe::Swap { a: 0, b: 1 },
            },
        );
        assert!(matches!(good, Response::WhatIf { .. }), "{good:?}");
        // Reloading the instance invalidates the resident snapshot.
        load(&engine, &mut session, "a", &instance_text(6, 3, 2, 2));
        let stale = engine.dispatch(
            &mut session,
            Request::WhatIf {
                name: "a".into(),
                probe: Probe::Swap { a: 0, b: 1 },
            },
        );
        assert!(
            matches!(
                stale,
                Response::Error {
                    code: ErrorCode::NoResidentState,
                    ..
                }
            ),
            "{stale:?}"
        );
    }

    #[test]
    fn error_paths_are_typed() {
        let engine = Engine::new(1);
        let mut session = engine.begin_session();
        let unknown = engine.dispatch(
            &mut session,
            Request::Solve {
                name: "missing".into(),
                method: SolveMethod::Portfolio,
                seed: None,
            },
        );
        assert!(matches!(
            unknown,
            Response::Error {
                code: ErrorCode::UnknownInstance,
                ..
            }
        ));
        let garbage = engine.dispatch(
            &mut session,
            Request::Load {
                name: "bad".into(),
                payload: text_payload("tasks two\n"),
            },
        );
        assert!(matches!(
            garbage,
            Response::Error {
                code: ErrorCode::InvalidPayload,
                ..
            }
        ));
        load(&engine, &mut session, "a", &instance_text(6, 3, 2, 1));
        let typo = engine.dispatch(
            &mut session,
            Request::Solve {
                name: "a".into(),
                method: SolveMethod::Heuristic("portolio".into()),
                seed: None,
            },
        );
        match typo {
            Response::Error {
                code: ErrorCode::BadRequest,
                detail,
            } => assert!(detail.contains("H4w"), "detail must list names: {detail}"),
            other => panic!("expected bad-request, got {other:?}"),
        }
        // 5 types on 3 machines: every solver fails feasibly.
        let infeasible_text = instance_text(10, 3, 5, 1);
        load(&engine, &mut session, "tight", &infeasible_text);
        for method in [SolveMethod::Heuristic("H4w".into()), SolveMethod::Portfolio] {
            let response = engine.dispatch(
                &mut session,
                Request::Solve {
                    name: "tight".into(),
                    method,
                    seed: None,
                },
            );
            assert!(
                matches!(
                    response,
                    Response::Error {
                        code: ErrorCode::Infeasible,
                        ..
                    }
                ),
                "{response:?}"
            );
        }
        let Response::Stats(stats) = engine.dispatch(&mut session, Request::Stats) else {
            panic!("stats failed");
        };
        let errors = stats.iter().find(|(k, _)| k == "errors").unwrap().1;
        assert_eq!(errors, 5);
    }

    #[test]
    fn per_request_seeds_change_seeded_answers_deterministically() {
        let engine = Engine::new(1);
        let mut session = engine.begin_session();
        load(&engine, &mut session, "a", &instance_text(12, 5, 3, 7));
        let solve = |session: &mut Session, seed: Option<u64>| match engine.dispatch(
            session,
            Request::Solve {
                name: "a".into(),
                method: SolveMethod::Heuristic("H1".into()),
                seed,
            },
        ) {
            Response::Solved { assignment, .. } => assignment,
            other => panic!("solve failed: {other:?}"),
        };
        let default_seed = solve(&mut session, None);
        let explicit_default = solve(&mut session, Some(DEFAULT_HEURISTIC_SEED));
        let reseeded = solve(&mut session, Some(99));
        let reseeded_again = solve(&mut session, Some(99));
        assert_eq!(default_seed, explicit_default);
        assert_eq!(reseeded, reseeded_again);
        assert_ne!(default_seed, reseeded, "H1 must react to the seed");
    }
    fn stat_of(stats: &[(String, u64)], key: &str) -> u64 {
        stats
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("no stat `{key}`"))
            .1
    }

    fn v2_stats(engine: &Engine, session: &mut Session) -> Vec<(String, u64)> {
        match engine.dispatch(session, Request::Stats) {
            Response::Stats(stats) => stats,
            other => panic!("stats failed: {other:?}"),
        }
    }

    #[test]
    fn repeated_evaluates_hit_the_keyed_cache_without_rebuilding() {
        let engine = Engine::new(1);
        let mut session = engine.begin_session();
        assert!(matches!(
            engine.dispatch(&mut session, Request::Hello { requested: 2 }),
            Response::Hello {
                version: ProtoVersion::V2
            }
        ));
        let text = instance_text(10, 4, 2, 5);
        load(&engine, &mut session, "a", &text);
        let instance = textio::instance_from_text(&text).unwrap();
        let mapping = H4wFastestMachine.map(&instance).unwrap();
        let evaluate = |session: &mut Session| match engine.dispatch(
            session,
            Request::Evaluate {
                name: "a".into(),
                payload: text_payload(&textio::mapping_to_text(&mapping)),
            },
        ) {
            Response::Evaluated {
                period,
                critical,
                loads,
            } => (period.to_bits(), critical, loads),
            other => panic!("evaluate failed: {other:?}"),
        };

        let cold = evaluate(&mut session);
        let stats = v2_stats(&engine, &mut session);
        assert_eq!(stat_of(&stats, "evaluator-builds"), 1);
        assert_eq!(stat_of(&stats, "evaluate-cache-misses"), 1);
        assert_eq!(stat_of(&stats, "evaluate-cache-hits"), 0);

        // Second evaluate of the same (instance generation, mapping): served
        // from the cache — no evaluator build — and bit-identical.
        let warm = evaluate(&mut session);
        assert_eq!(warm, cold);
        let stats = v2_stats(&engine, &mut session);
        assert_eq!(stat_of(&stats, "evaluator-builds"), 1, "hit must not build");
        assert_eq!(stat_of(&stats, "evaluate-cache-hits"), 1);
        assert_eq!(
            stat_of(&stats, "evaluations"),
            2,
            "hits still count as evaluations"
        );

        // The cached snapshot backs `whatif` exactly like a fresh build.
        let Response::WhatIf { period, critical } = engine.dispatch(
            &mut session,
            Request::WhatIf {
                name: "a".into(),
                probe: Probe::Swap { a: 0, b: 1 },
            },
        ) else {
            panic!("whatif failed");
        };
        let mut fresh = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let expected = fresh.evaluate_swap(TaskId(0), TaskId(1)).unwrap();
        assert_eq!(period.to_bits(), expected.period.value().to_bits());
        assert_eq!(critical, expected.critical_machine.index());

        // Reloading the instance bumps the store generation: the old entry is
        // unreachable and the next evaluate is a miss again.
        load(&engine, &mut session, "a", &text);
        evaluate(&mut session);
        let stats = v2_stats(&engine, &mut session);
        assert_eq!(
            stat_of(&stats, "evaluator-builds"),
            2,
            "reload must invalidate"
        );
        assert_eq!(stat_of(&stats, "evaluate-cache-misses"), 2);
        assert_eq!(stat_of(&stats, "evaluate-cache-hits"), 1);

        // Unload purges the instance's entries outright.
        assert!(matches!(
            engine.dispatch(&mut session, Request::Unload { name: "a".into() }),
            Response::Unloaded { .. }
        ));
        assert_eq!(engine.cache().len(), 0, "unload must purge the cache");
    }

    #[test]
    fn batches_need_a_v2_hello_and_answer_item_by_item() {
        let engine = Engine::new(1);
        let mut session = engine.begin_session();
        let text = instance_text(8, 4, 2, 3);

        // v1 sessions cannot batch.
        let response = engine.dispatch(&mut session, Request::Batch(vec![Request::List]));
        let Response::Error { code, detail } = response else {
            panic!("expected an error");
        };
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(detail.contains("requires mf-proto v2"), "{detail}");

        // After a v2 hello, a mixed batch answers in order, with errors and
        // non-batchable commands answered in place.
        assert!(matches!(
            engine.dispatch(&mut session, Request::Hello { requested: 2 }),
            Response::Hello {
                version: ProtoVersion::V2
            }
        ));
        let requests_before = stat_of(&v2_stats(&engine, &mut session), "requests");
        let batch = Request::Batch(vec![
            Request::Load {
                name: "a".into(),
                payload: text_payload(&text),
            },
            Request::Solve {
                name: "a".into(),
                method: SolveMethod::Heuristic("h4w".into()),
                seed: None,
            },
            Request::List, // not instance-keyed: cannot ride an envelope
            Request::Unload {
                name: "missing".into(),
            },
        ]);
        let Response::Batch(answers) = engine.dispatch(&mut session, batch) else {
            panic!("batch failed");
        };
        assert_eq!(answers.len(), 4);
        assert!(matches!(answers[0], Response::Loaded { .. }), "{answers:?}");
        assert!(matches!(answers[1], Response::Solved { .. }), "{answers:?}");
        assert!(
            matches!(
                &answers[2],
                Response::Error {
                    code: ErrorCode::BadRequest,
                    detail
                } if detail.contains("cannot ride a batch envelope")
            ),
            "{answers:?}"
        );
        assert!(
            matches!(
                answers[3],
                Response::Error {
                    code: ErrorCode::UnknownInstance,
                    ..
                }
            ),
            "{answers:?}"
        );

        // Counter parity with the serial script: the envelope plus one
        // request per item, and one error per error answer.
        let stats = v2_stats(&engine, &mut session);
        assert_eq!(stat_of(&stats, "requests"), requests_before + 1 + 4 + 1);
        // The v1 batch rejection above, the in-envelope `list`, and the
        // unknown-instance unload.
        assert_eq!(stat_of(&stats, "errors"), 3);
        assert_eq!(stat_of(&stats, "loads"), 1);
        assert_eq!(stat_of(&stats, "solves-heuristic"), 1);
    }

    #[test]
    fn v2_stats_extend_v1_stats_with_the_cache_counters() {
        let engine = Engine::new(1);
        let v1 = engine.stats_for(ProtoVersion::V1);
        let v2 = engine.stats_for(ProtoVersion::V2);
        let v3 = engine.stats_for(ProtoVersion::V3);
        assert_eq!(v1, engine.stats(), "v1 view is the legacy stats list");
        assert_eq!(&v2[..v1.len()], &v1[..], "v2 must extend, not reorder");
        let appended: Vec<&str> = v2[v1.len()..].iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            appended,
            [
                "evaluator-builds",
                "evaluate-cache-hits",
                "evaluate-cache-misses",
                "evaluate-cache-evictions",
                "whatif-dense",
                "whatif-exact",
                "mass-row-builds",
                "sweep-probes",
                "sweep-evaluations",
                "sweep-skips",
                "sweep-reuses",
                "sweep-rescales"
            ]
        );
        assert_eq!(&v3[..v2.len()], &v2[..], "v3 must extend, not reorder");
        let appended: Vec<&str> = v3[v2.len()..].iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            appended,
            [
                "solves-anytime",
                "anytime-reports",
                "anytime-proven",
                "bnb-nodes",
                "lp-solves",
                "lp-reuses"
            ]
        );
        // status-export reports the complete (v3) counter list as the
        // global block.
        let report = engine.status_report();
        assert_eq!(report.global, v3);
        assert_eq!(report.workers, vec![v3]);
    }
}
