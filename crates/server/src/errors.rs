//! Typed engine errors with **stable wire strings**.
//!
//! Every way a request can fail inside the dispatch layer is one
//! [`EngineError`] variant; its [`ErrorCode`] and its `Display` string are
//! exactly what travels on the wire as `err <code> <detail>`. Centralizing
//! the strings here means a router can forward a worker's error response
//! verbatim and a client (or the golden transcripts) can pin them — the
//! strings are part of the protocol contract, not incidental formatting.

use crate::proto::{ErrorCode, ProtoVersion, Response};

/// A dispatch-layer failure. Converts losslessly to (and is the single
/// source of) the `err <code> <detail>` wire form via
/// [`EngineError::code`] and `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// No resident instance under that name.
    UnknownInstance {
        /// The requested store name.
        name: String,
    },
    /// An inline instance/mapping payload was rejected by `textio`, or an
    /// evaluator could not be built from it. The detail is already flattened
    /// to one line.
    InvalidPayload {
        /// One-line description of the rejection.
        detail: String,
    },
    /// A syntactically valid mapping that does not fit the instance.
    MappingMismatch {
        /// The validator's one-line explanation.
        detail: String,
    },
    /// `solve … heuristic` with a name outside the registry.
    UnknownHeuristic {
        /// The requested (unrecognized) heuristic name.
        requested: String,
    },
    /// A named solver ran and failed on this instance.
    SolverFailed {
        /// Canonical solver label.
        label: String,
        /// The solver's one-line failure description.
        detail: String,
    },
    /// The portfolio produced no mapping at all.
    PortfolioEmpty,
    /// A solver's mapping could not be evaluated (defensive: solver
    /// mappings are valid by construction).
    Infeasible {
        /// One-line description.
        detail: String,
    },
    /// `whatif` without resident evaluator state for the instance in this
    /// session (never evaluated/solved, or invalidated by a reload).
    NoResidentState {
        /// The requested store name.
        name: String,
    },
    /// A request that was well-formed on the wire but wrong at dispatch
    /// time (out-of-range probe, failed resume, …).
    BadRequest {
        /// One-line description.
        detail: String,
    },
    /// A v2 command sent on a session still speaking v1.
    VersionRequired {
        /// The wire keyword of the rejected command.
        command: &'static str,
        /// The version the command needs.
        needs: ProtoVersion,
    },
    /// A `hello` asking for a version that cannot be negotiated (v0).
    UnsupportedVersion {
        /// The version number the client asked for.
        requested: u32,
    },
    /// A command inside a `batch` envelope that is not an instance command.
    NotBatchable {
        /// The wire keyword of the rejected command.
        command: &'static str,
    },
    /// A durable engine applied a `load`/`unload` in memory but could not
    /// append it to the journal — the state is live but would not survive a
    /// restart.
    JournalFailed {
        /// One-line description of the append failure.
        detail: String,
    },
}

impl EngineError {
    /// The wire error class of this failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            EngineError::UnknownInstance { .. } => ErrorCode::UnknownInstance,
            EngineError::InvalidPayload { .. } | EngineError::MappingMismatch { .. } => {
                ErrorCode::InvalidPayload
            }
            EngineError::SolverFailed { .. }
            | EngineError::PortfolioEmpty
            | EngineError::Infeasible { .. } => ErrorCode::Infeasible,
            EngineError::NoResidentState { .. } => ErrorCode::NoResidentState,
            EngineError::UnknownHeuristic { .. }
            | EngineError::BadRequest { .. }
            | EngineError::VersionRequired { .. }
            | EngineError::UnsupportedVersion { .. }
            | EngineError::NotBatchable { .. } => ErrorCode::BadRequest,
            EngineError::JournalFailed { .. } => ErrorCode::JournalFailed,
        }
    }

    /// The `err <code> <detail>` response of this failure — the only place
    /// engine error responses are built.
    pub fn into_response(self) -> Response {
        Response::Error {
            code: self.code(),
            detail: self.to_string(),
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownInstance { name } => {
                write!(f, "no instance named `{name}` is loaded")
            }
            EngineError::InvalidPayload { detail } => write!(f, "{detail}"),
            EngineError::MappingMismatch { detail } => {
                write!(f, "mapping does not fit the instance: {detail}")
            }
            EngineError::UnknownHeuristic { requested } => write!(
                f,
                "unknown heuristic `{requested}` (expected one of {})",
                mf_heuristics::registry_names().join(", ")
            ),
            EngineError::SolverFailed { label, detail } => write!(f, "{label} failed: {detail}"),
            EngineError::PortfolioEmpty => write!(
                f,
                "no portfolio cell produced a mapping (more task types than machines?)"
            ),
            EngineError::Infeasible { detail } => write!(f, "{detail}"),
            EngineError::NoResidentState { name } => write!(
                f,
                "no resident evaluator state for `{name}` — run `evaluate` or `solve` first"
            ),
            EngineError::BadRequest { detail } => write!(f, "{detail}"),
            EngineError::VersionRequired { command, needs } => write!(
                f,
                "`{command}` requires {needs} — negotiate with `hello {needs}` first"
            ),
            EngineError::UnsupportedVersion { requested } => {
                write!(f, "cannot negotiate mf-proto v{requested}")
            }
            EngineError::NotBatchable { command } => write!(
                f,
                "`{command}` cannot ride a batch envelope (only load, unload, evaluate, \
                 whatif and solve can)"
            ),
            EngineError::JournalFailed { detail } => write!(
                f,
                "applied in memory but not journaled — will not survive a restart: {detail}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<EngineError> for Response {
    fn from(error: EngineError) -> Response {
        error.into_response()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{response_from_text, response_to_text};

    /// The wire strings are a protocol contract: pin them literally, and pin
    /// that every variant survives a wire round trip losslessly (the property
    /// a router relies on when forwarding worker errors).
    #[test]
    fn wire_strings_are_stable_and_round_trip() {
        let cases: Vec<(EngineError, ErrorCode, String)> = vec![
            (
                EngineError::UnknownInstance { name: "x".into() },
                ErrorCode::UnknownInstance,
                "no instance named `x` is loaded".into(),
            ),
            (
                EngineError::MappingMismatch {
                    detail: "5 tasks, mapping has 4".into(),
                },
                ErrorCode::InvalidPayload,
                "mapping does not fit the instance: 5 tasks, mapping has 4".into(),
            ),
            (
                EngineError::UnknownHeuristic {
                    requested: "H9".into(),
                },
                ErrorCode::BadRequest,
                format!(
                    "unknown heuristic `H9` (expected one of {})",
                    mf_heuristics::registry_names().join(", ")
                ),
            ),
            (
                EngineError::SolverFailed {
                    label: "H4w".into(),
                    detail: "4 task types but only 3 machines".into(),
                },
                ErrorCode::Infeasible,
                "H4w failed: 4 task types but only 3 machines".into(),
            ),
            (
                EngineError::PortfolioEmpty,
                ErrorCode::Infeasible,
                "no portfolio cell produced a mapping (more task types than machines?)".into(),
            ),
            (
                EngineError::NoResidentState { name: "a".into() },
                ErrorCode::NoResidentState,
                "no resident evaluator state for `a` — run `evaluate` or `solve` first".into(),
            ),
            (
                EngineError::VersionRequired {
                    command: "batch",
                    needs: ProtoVersion::V2,
                },
                ErrorCode::BadRequest,
                "`batch` requires mf-proto v2 — negotiate with `hello mf-proto v2` first".into(),
            ),
            (
                EngineError::UnsupportedVersion { requested: 0 },
                ErrorCode::BadRequest,
                "cannot negotiate mf-proto v0".into(),
            ),
            (
                EngineError::NotBatchable { command: "stats" },
                ErrorCode::BadRequest,
                "`stats` cannot ride a batch envelope (only load, unload, evaluate, \
                 whatif and solve can)"
                    .into(),
            ),
            (
                EngineError::JournalFailed {
                    detail: "journal io failed: disk full".into(),
                },
                ErrorCode::JournalFailed,
                "applied in memory but not journaled — will not survive a restart: \
                 journal io failed: disk full"
                    .into(),
            ),
        ];
        for (error, code, detail) in cases {
            assert_eq!(error.code(), code, "{error:?}");
            assert_eq!(error.to_string(), detail, "{error:?}");
            let response = error.into_response();
            let text = response_to_text(&response).unwrap();
            let parsed = response_from_text(&text).unwrap();
            assert_eq!(parsed, response, "error must forward losslessly");
        }
    }
}
