//! `mf-journal v1` — the append-only durability log behind `serve --data-dir`.
//!
//! A durable server records every store mutation (`load`, `unload`) in one
//! plain-text journal file, `journal.mfj`, inside its data directory. On
//! boot the journal is **replayed**: the surviving instances, their exact
//! payload text, their generations and the monotone generation high-water
//! mark are reconstructed, so a restarted server answers requests
//! byte-identically to one that never died — including the
//! `(generation, fingerprint)`-keyed evaluate-cache semantics, because no
//! post-restart load can ever re-issue a pre-restart generation.
//!
//! The format follows the `mf-report v1` conventions: line-oriented plain
//! text, counted payloads, and canonical write→parse→write byte identity.
//!
//! ```text
//! mf-journal v1
//! mark 7
//! load alpha 3 5
//! tasks 1
//! machines 1
//! types 1
//! task 0 0
//! time 0 0 10
//! unload alpha
//! ```
//!
//! * `mark <floor>` — the generation floor: every generation ever issued by
//!   this data directory is **strictly below** `floor`. A replayed store
//!   resumes its counter at `max(counter, floor)`.
//! * `load <name> <generation> <count>` — followed by exactly `count`
//!   payload lines: the instance text as it arrived on the wire.
//! * `unload <name>` — the instance left the store (explicit `unload` or a
//!   byte-cap eviction).
//!
//! # Compaction
//!
//! The journal is **write-behind**: an in-memory shadow map of the live
//! instances is updated first, then the record is appended and flushed.
//! Every [`COMPACT_EVERY`] appends — and once on every boot — the file is
//! rewritten from the shadow as one snapshot (`mark` + one `load` per live
//! instance, in load order, oldest first), atomically via a temp file and
//! `rename`, so the file stays proportional to the live set instead of the
//! full history. Keeping load order through compaction and replay lets a
//! restarted store approximate its pre-crash LRU recency (`get` touches are
//! not journaled, so eviction parity under byte-cap pressure is approximate,
//! not exact).
//!
//! # Crash safety
//!
//! Appends are flushed to the OS before the response leaves the server, but
//! the journal never calls `fsync` — a `SIGKILL` loses nothing, a power cut
//! may lose the OS write-back window. A record torn mid-append (the process
//! died inside `write`) is discarded at the next boot: replay stops at the
//! first undecodable record and the boot compaction rewrites the file from
//! exactly the state that survived.
//!
//! A *runtime* append failure (disk full mid-`write`) can tear the tail the
//! same way while the process lives on. The writer is then **poisoned**:
//! nothing is ever appended after possibly-torn bytes. The journal
//! immediately tries to heal by rewriting the file from the shadow (which
//! already carries the record); if that also fails, every subsequent append
//! retries the rewrite first — so acknowledged records can never end up
//! stranded behind a tear that replay would discard.
//!
//! One process per data directory is enforced with an advisory `flock` on a
//! sibling [`LOCK_FILE`]: a second `Journal::open` on a locked directory
//! fails fast with [`JournalError::Locked`] instead of silently interleaving
//! appends. The lock follows the file description, so it releases the
//! moment the holder dies — `SIGKILL` included — and can never go stale.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Format magic — the first line of every journal file.
pub const JOURNAL_FORMAT: &str = "mf-journal v1";

/// File name of the journal inside a `--data-dir` directory.
pub const JOURNAL_FILE: &str = "journal.mfj";

/// File name of the advisory lock inside a `--data-dir` directory. The lock
/// lives on its own file (not on the journal) because compaction replaces
/// the journal's inode on every atomic rename, which would silently drop a
/// lock held on it.
pub const LOCK_FILE: &str = "journal.lock";

/// Appends between automatic compactions. Each compaction rewrites the file
/// from the live shadow map, so the file length is bounded by
/// `live set + COMPACT_EVERY` records regardless of churn.
pub const COMPACT_EVERY: u64 = 64;

/// Errors raised when opening, appending to, or parsing a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io {
        /// One-line description of the failure.
        detail: String,
    },
    /// The file is not a journal in the expected format.
    Malformed {
        /// 1-based line number of the offending line (0 for global issues).
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// A name or payload line contained a newline (or a name contained
    /// whitespace) and cannot be journaled losslessly.
    UnencodableText {
        /// The offending text.
        text: String,
    },
    /// Another process already holds the data directory's journal lock —
    /// two servers appending to one journal would corrupt each other's
    /// state, so the second opener fails fast instead.
    Locked {
        /// The contended data directory.
        dir: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { detail } => write!(f, "journal io failed: {detail}"),
            JournalError::Malformed { line, detail } => {
                write!(f, "malformed journal at line {line}: {detail}")
            }
            JournalError::UnencodableText { text } => {
                write!(f, "text cannot be journaled losslessly: {text:?}")
            }
            JournalError::Locked { dir } => {
                write!(
                    f,
                    "data directory `{dir}` is locked by another server process"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(error: std::io::Error) -> Self {
        JournalError::Io {
            detail: error.to_string(),
        }
    }
}

/// Result alias for journal operations.
pub type JournalResult<T> = std::result::Result<T, JournalError>;

/// One journal record. The text forms are canonical: `records_from_text ∘
/// records_to_text` is the identity on records, and the reverse composition
/// is the identity on journal bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// Generation floor: every generation ever issued is strictly below
    /// this value.
    Mark {
        /// The floor (the next generation a load may use).
        generation: u64,
    },
    /// An instance entered the store.
    Load {
        /// Store name (whitespace-free token).
        name: String,
        /// The generation the store issued for this load.
        generation: u64,
        /// The instance text, line by line, exactly as loaded.
        payload: Vec<String>,
    },
    /// An instance left the store (explicit unload or byte-cap eviction).
    Unload {
        /// Store name.
        name: String,
    },
}

fn check_name(name: &str) -> JournalResult<&str> {
    if name.is_empty() || name.contains(char::is_whitespace) {
        return Err(JournalError::UnencodableText {
            text: name.to_string(),
        });
    }
    Ok(name)
}

fn check_payload_line(line: &str) -> JournalResult<&str> {
    if line.contains('\n') || line.contains('\r') {
        return Err(JournalError::UnencodableText {
            text: line.to_string(),
        });
    }
    Ok(line)
}

impl JournalRecord {
    /// The canonical text of this record (head line plus counted payload
    /// lines, each newline-terminated). Rejects unencodable names and
    /// payload lines instead of corrupting the framing.
    pub fn to_text(&self) -> JournalResult<String> {
        let mut out = String::new();
        match self {
            JournalRecord::Mark { generation } => {
                let _ = writeln!(out, "mark {generation}");
            }
            JournalRecord::Load {
                name,
                generation,
                payload,
            } => {
                let _ = writeln!(
                    out,
                    "load {} {generation} {}",
                    check_name(name)?,
                    payload.len()
                );
                for line in payload {
                    out.push_str(check_payload_line(line)?);
                    out.push('\n');
                }
            }
            JournalRecord::Unload { name } => {
                let _ = writeln!(out, "unload {}", check_name(name)?);
            }
        }
        Ok(out)
    }
}

/// Serializes a full journal: the format header followed by the records.
pub fn records_to_text(records: &[JournalRecord]) -> JournalResult<String> {
    let mut out = String::from(JOURNAL_FORMAT);
    out.push('\n');
    for record in records {
        out.push_str(&record.to_text()?);
    }
    Ok(out)
}

/// Strictly parses a full journal (header plus records). Any torn or
/// unrecognized line is an error — the tolerant boot-replay path lives in
/// [`Journal::open`].
pub fn records_from_text(text: &str) -> JournalResult<Vec<JournalRecord>> {
    let mut cursor = LineCursor::new(text);
    match cursor.next_line() {
        Some(Some(header)) if header == JOURNAL_FORMAT => {}
        Some(Some(header)) => {
            return Err(JournalError::Malformed {
                line: 1,
                detail: format!("expected `{JOURNAL_FORMAT}` header, found `{header}`"),
            })
        }
        Some(None) | None => {
            return Err(JournalError::Malformed {
                line: 1,
                detail: format!("expected `{JOURNAL_FORMAT}` header"),
            })
        }
    }
    let mut records = Vec::new();
    while let Some(record) = parse_record(&mut cursor)? {
        records.push(record);
    }
    Ok(records)
}

/// Line iterator tracking the 1-based line number and the bytes consumed —
/// a final line without a terminating newline is reported as torn
/// (`Some(None)`), never silently treated as complete.
struct LineCursor<'a> {
    rest: std::str::SplitInclusive<'a, char>,
    line: usize,
    consumed: usize,
}

impl<'a> LineCursor<'a> {
    fn new(text: &'a str) -> Self {
        LineCursor {
            rest: text.split_inclusive('\n'),
            line: 0,
            consumed: 0,
        }
    }

    /// `None` at EOF, `Some(None)` for a torn (unterminated) final line,
    /// `Some(Some(line))` otherwise.
    fn next_line(&mut self) -> Option<Option<&'a str>> {
        let raw = self.rest.next()?;
        self.line += 1;
        self.consumed += raw.len();
        Some(raw.strip_suffix('\n'))
    }
}

fn parse_u64(token: &str, what: &str, line: usize) -> JournalResult<u64> {
    token.parse().map_err(|_| JournalError::Malformed {
        line,
        detail: format!("bad {what} `{token}`"),
    })
}

/// Parses one record at the cursor; `Ok(None)` at EOF, `Err` on a torn or
/// unrecognized record.
fn parse_record(cursor: &mut LineCursor<'_>) -> JournalResult<Option<JournalRecord>> {
    let Some(head) = cursor.next_line() else {
        return Ok(None);
    };
    let line = cursor.line;
    let Some(head) = head else {
        return Err(JournalError::Malformed {
            line,
            detail: "record head is torn (no trailing newline)".to_string(),
        });
    };
    let tokens: Vec<&str> = head.split(' ').collect();
    let record = match tokens.as_slice() {
        ["mark", generation] => JournalRecord::Mark {
            generation: parse_u64(generation, "mark", line)?,
        },
        ["unload", name] => JournalRecord::Unload {
            name: check_name(name)
                .map_err(|_| JournalError::Malformed {
                    line,
                    detail: format!("bad instance name in `{head}`"),
                })?
                .to_string(),
        },
        ["load", name, generation, count] => {
            let name = check_name(name)
                .map_err(|_| JournalError::Malformed {
                    line,
                    detail: format!("bad instance name in `{head}`"),
                })?
                .to_string();
            let generation = parse_u64(generation, "generation", line)?;
            let count = parse_u64(count, "payload count", line)? as usize;
            let mut payload = Vec::new();
            for _ in 0..count {
                match cursor.next_line() {
                    Some(Some(payload_line)) => payload.push(payload_line.to_string()),
                    Some(None) | None => {
                        return Err(JournalError::Malformed {
                            line: cursor.line,
                            detail: format!("payload of `{head}` is torn"),
                        })
                    }
                }
            }
            JournalRecord::Load {
                name,
                generation,
                payload,
            }
        }
        _ => {
            return Err(JournalError::Malformed {
                line,
                detail: format!("unrecognized record `{head}`"),
            })
        }
    };
    Ok(Some(record))
}

/// One instance recovered from a journal replay, ready to be re-inserted
/// into a store with its original generation pinned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredInstance {
    /// Store name.
    pub name: String,
    /// The generation the original load was issued.
    pub generation: u64,
    /// The instance text, line by line, exactly as originally loaded.
    pub payload: Vec<String>,
}

/// One live instance in the write-behind shadow.
#[derive(Debug)]
struct LiveEntry {
    generation: u64,
    payload: Vec<String>,
    /// Load-order stamp (bumped on every load, including same-name
    /// reloads): compaction and replay emit live instances in this order,
    /// so a restarted store approximates its pre-crash LRU recency.
    seq: u64,
}

#[derive(Debug)]
struct Inner {
    path: PathBuf,
    file: BufWriter<File>,
    /// Held for the journal's lifetime: the advisory `flock` on
    /// [`LOCK_FILE`]. Releases automatically when the process dies,
    /// `SIGKILL` included, so it can never go stale.
    _lock: File,
    /// Shadow of the live instance set. The single source compactions
    /// snapshot from — deliberately independent of the engine stores, so a
    /// shared multi-worker journal needs no cross-shard coordination to
    /// compact.
    live: BTreeMap<String, LiveEntry>,
    /// The next [`LiveEntry::seq`] stamp.
    next_seq: u64,
    /// Generation floor (see [`JournalRecord::Mark`]).
    mark: u64,
    appends_since_compact: u64,
    /// Set when an append failed mid-write: the file tail may be torn, so
    /// nothing may be appended until a compaction rewrites the file from
    /// the shadow (compaction clears the flag).
    poisoned: bool,
    entries_replayed: u64,
    bytes_replayed: u64,
    compactions: u64,
    torn_tail: bool,
    #[cfg(test)]
    fail_appends: u64,
    #[cfg(test)]
    fail_compactions: u64,
}

/// Writes a compacted snapshot of `live` to `path` (atomically, via a temp
/// file and rename) and returns a fresh append handle on it. Loads are
/// emitted oldest-first so replay reconstructs load-order recency.
fn write_snapshot(
    path: &Path,
    mark: u64,
    live: &BTreeMap<String, LiveEntry>,
) -> JournalResult<BufWriter<File>> {
    let mut records = vec![JournalRecord::Mark { generation: mark }];
    let mut ordered: Vec<(&String, &LiveEntry)> = live.iter().collect();
    ordered.sort_by_key(|(_, entry)| entry.seq);
    for (name, entry) in ordered {
        records.push(JournalRecord::Load {
            name: name.clone(),
            generation: entry.generation,
            payload: entry.payload.clone(),
        });
    }
    let text = records_to_text(&records)?;
    let tmp = path.with_extension("mfj.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)?;
    Ok(BufWriter::new(OpenOptions::new().append(true).open(path)?))
}

/// Takes the advisory exclusive lock, failing fast (`LOCK_NB`) when another
/// open file description — typically another server process — holds it.
#[cfg(unix)]
fn try_lock_exclusive(file: &File) -> std::io::Result<()> {
    use std::os::unix::io::AsRawFd;
    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }
    // SAFETY: `flock` takes a valid fd (owned by `file` for the duration of
    // the call) and an operation flag; no pointers are involved.
    if unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) } == 0 {
        Ok(())
    } else {
        Err(std::io::Error::last_os_error())
    }
}

/// Single-process-per-data-dir is only enforced on unix; elsewhere the lock
/// file is created but not held.
#[cfg(not(unix))]
fn try_lock_exclusive(_file: &File) -> std::io::Result<()> {
    Ok(())
}

impl Inner {
    fn compact(&mut self) -> JournalResult<()> {
        #[cfg(test)]
        if self.fail_compactions > 0 {
            self.fail_compactions -= 1;
            return Err(JournalError::Io {
                detail: "injected compaction failure".to_string(),
            });
        }
        self.file = write_snapshot(&self.path, self.mark, &self.live)?;
        self.appends_since_compact = 0;
        self.poisoned = false;
        self.compactions += 1;
        Ok(())
    }

    /// Appends one encoded record to the file and flushes it to the OS.
    fn write_record(&mut self, text: &str) -> std::io::Result<()> {
        #[cfg(test)]
        if self.fail_appends > 0 {
            self.fail_appends -= 1;
            // A crash-grade failure: half the record reaches the file,
            // then the write errors out.
            let _ = self.file.write_all(&text.as_bytes()[..text.len() / 2]);
            let _ = self.file.flush();
            return Err(std::io::Error::other("injected append failure"));
        }
        self.file.write_all(text.as_bytes())?;
        self.file.flush()
    }
}

/// The write-behind journal of one data directory. Thread-safe: a router's
/// workers append to one shared journal. One server process per data
/// directory, enforced by an advisory `flock` on [`LOCK_FILE`] — a second
/// opener fails fast with [`JournalError::Locked`].
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<Inner>,
}

impl Journal {
    /// Opens (creating the directory and file as needed) and replays the
    /// journal of `data_dir`, then writes a compacted boot snapshot — which
    /// heals any tail torn by a crash mid-append. Replay is tolerant of a
    /// torn tail (it stops at the first undecodable record); a file whose
    /// *header* is not `mf-journal v1` is refused outright, so a foreign
    /// file is never silently overwritten.
    pub fn open(data_dir: impl AsRef<Path>) -> JournalResult<Journal> {
        let dir = data_dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let lock = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(dir.join(LOCK_FILE))?;
        try_lock_exclusive(&lock).map_err(|_| JournalError::Locked {
            dir: dir.display().to_string(),
        })?;
        let path = dir.join(JOURNAL_FILE);
        let mut live = BTreeMap::new();
        let mut next_seq = 0u64;
        let mut mark = 0u64;
        let mut entries_replayed = 0u64;
        let mut bytes_replayed = 0u64;
        let mut torn_tail = false;
        let existed = path.exists();
        if existed {
            // A crash can tear mid-write: decode lossily and let the torn
            // record (now containing replacement characters at worst) stop
            // the replay exactly where durability ended.
            let raw = std::fs::read(&path)?;
            let text = String::from_utf8_lossy(&raw);
            let mut cursor = LineCursor::new(&text);
            match cursor.next_line() {
                None => {} // zero-byte file: died between create and header
                Some(None) => torn_tail = true,
                Some(Some(header)) if header != JOURNAL_FORMAT => {
                    return Err(JournalError::Malformed {
                        line: 1,
                        detail: format!(
                            "expected `{JOURNAL_FORMAT}` header, found `{header}` — refusing \
                             to overwrite a foreign file"
                        ),
                    });
                }
                Some(Some(_)) => {
                    bytes_replayed = cursor.consumed as u64;
                    loop {
                        match parse_record(&mut cursor) {
                            Ok(None) => break,
                            Ok(Some(record)) => {
                                match record {
                                    JournalRecord::Mark { generation } => {
                                        mark = mark.max(generation);
                                    }
                                    JournalRecord::Load {
                                        name,
                                        generation,
                                        payload,
                                    } => {
                                        mark = mark.max(generation + 1);
                                        let seq = next_seq;
                                        next_seq += 1;
                                        live.insert(
                                            name,
                                            LiveEntry {
                                                generation,
                                                payload,
                                                seq,
                                            },
                                        );
                                    }
                                    JournalRecord::Unload { name } => {
                                        live.remove(&name);
                                    }
                                }
                                entries_replayed += 1;
                                bytes_replayed = cursor.consumed as u64;
                            }
                            Err(_) => {
                                torn_tail = true;
                                break;
                            }
                        }
                    }
                }
            }
        }
        let file = write_snapshot(&path, mark, &live)?;
        Ok(Journal {
            inner: Mutex::new(Inner {
                path,
                file,
                _lock: lock,
                live,
                next_seq,
                mark,
                appends_since_compact: 0,
                poisoned: false,
                entries_replayed,
                bytes_replayed,
                // The boot snapshot of a pre-existing journal is a
                // compaction (it rewrote history); creating a fresh file is
                // not.
                compactions: u64::from(existed),
                torn_tail,
                #[cfg(test)]
                fail_appends: 0,
                #[cfg(test)]
                fail_compactions: 0,
            }),
        })
    }

    fn append(&self, record: JournalRecord) -> JournalResult<()> {
        // Validate before touching the shadow, so an unencodable record
        // cannot leave the shadow and the file disagreeing.
        let text = record.to_text()?;
        let mut inner = self.inner.lock().expect("journal lock poisoned");
        match record {
            JournalRecord::Mark { generation } => inner.mark = inner.mark.max(generation),
            JournalRecord::Load {
                name,
                generation,
                payload,
            } => {
                inner.mark = inner.mark.max(generation + 1);
                let seq = inner.next_seq;
                inner.next_seq += 1;
                inner.live.insert(
                    name,
                    LiveEntry {
                        generation,
                        payload,
                        seq,
                    },
                );
            }
            JournalRecord::Unload { name } => {
                inner.live.remove(&name);
            }
        }
        inner.appends_since_compact += 1;
        if inner.poisoned || inner.appends_since_compact >= COMPACT_EVERY {
            // A poisoned writer must never append after possibly-torn
            // bytes; rewriting from the shadow heals the tear and carries
            // this record (the shadow is already updated). The periodic
            // compaction rides the same path.
            return inner.compact();
        }
        match inner.write_record(&text) {
            Ok(()) => Ok(()),
            Err(error) => {
                // The tail may now hold a torn record, and replay stops at
                // the first undecodable byte — appending after it would
                // silently discard acknowledged records on the next boot.
                // Heal immediately by rewriting from the shadow; if that
                // also fails, stay poisoned so the next append compacts
                // before anything else touches the file.
                inner.poisoned = true;
                if inner.compact().is_ok() {
                    Ok(())
                } else {
                    Err(error.into())
                }
            }
        }
    }

    /// Journals a `load`: `name` now holds `payload` under `generation`.
    pub fn record_load(
        &self,
        name: &str,
        generation: u64,
        payload: &[String],
    ) -> JournalResult<()> {
        self.append(JournalRecord::Load {
            name: name.to_string(),
            generation,
            payload: payload.to_vec(),
        })
    }

    /// Journals an `unload` (or byte-cap eviction) of `name`.
    pub fn record_unload(&self, name: &str) -> JournalResult<()> {
        self.append(JournalRecord::Unload {
            name: name.to_string(),
        })
    }

    /// The generation floor: every generation ever issued through this
    /// journal is strictly below it. A replayed store must resume its
    /// counter at least here.
    pub fn mark(&self) -> u64 {
        self.inner.lock().expect("journal lock poisoned").mark
    }

    /// The recovered live instances in original load order (oldest load
    /// first; a same-name reload refreshes) — what a booting engine (or
    /// each router shard, after hashing the names) re-inserts. Adopting
    /// them in this order stamps store recency the way the pre-crash loads
    /// did, so byte-cap eviction after a restart approximates the
    /// uninterrupted schedule.
    pub fn live_instances(&self) -> Vec<RecoveredInstance> {
        let inner = self.inner.lock().expect("journal lock poisoned");
        let mut entries: Vec<(&String, &LiveEntry)> = inner.live.iter().collect();
        entries.sort_by_key(|(_, entry)| entry.seq);
        entries
            .into_iter()
            .map(|(name, entry)| RecoveredInstance {
                name: name.clone(),
                generation: entry.generation,
                payload: entry.payload.clone(),
            })
            .collect()
    }

    /// Test hook: makes the next `appends` record writes tear mid-write and
    /// the next `compactions` compaction attempts fail.
    #[cfg(test)]
    fn inject_failures(&self, appends: u64, compactions: u64) {
        let mut inner = self.inner.lock().expect("journal lock poisoned");
        inner.fail_appends = appends;
        inner.fail_compactions = compactions;
    }

    /// Number of live instances in the shadow map.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal lock poisoned").live.len()
    }

    /// `true` when no instance is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the boot replay stopped at a torn or undecodable record
    /// (which the boot snapshot then healed).
    pub fn recovered_torn_tail(&self) -> bool {
        self.inner.lock().expect("journal lock poisoned").torn_tail
    }

    /// Path of the journal file.
    pub fn path(&self) -> PathBuf {
        self.inner
            .lock()
            .expect("journal lock poisoned")
            .path
            .clone()
    }

    /// The recovery counters, in fixed presentation order — the `recovery`
    /// block of the `mf-stats v1` status-export report. Replay counters are
    /// fixed at open; `journal-compactions` and `journal-live-instances`
    /// keep moving with the workload.
    pub fn status_counters(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().expect("journal lock poisoned");
        vec![
            (
                "journal-entries-replayed".to_string(),
                inner.entries_replayed,
            ),
            ("journal-bytes-replayed".to_string(), inner.bytes_replayed),
            ("journal-compactions".to_string(), inner.compactions),
            (
                "journal-live-instances".to_string(),
                inner.live.len() as u64,
            ),
            ("journal-generation-mark".to_string(), inner.mark),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("mf-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        path
    }

    fn payload() -> Vec<String> {
        vec!["tasks 1".to_string(), "machines 1".to_string()]
    }

    #[test]
    fn records_round_trip_byte_identically() {
        let records = vec![
            JournalRecord::Mark { generation: 7 },
            JournalRecord::Load {
                name: "alpha".to_string(),
                generation: 3,
                payload: payload(),
            },
            JournalRecord::Unload {
                name: "beta".to_string(),
            },
            JournalRecord::Load {
                name: "empty".to_string(),
                generation: 6,
                payload: Vec::new(),
            },
        ];
        let text = records_to_text(&records).unwrap();
        let parsed = records_from_text(&text).unwrap();
        assert_eq!(parsed, records, "parse ∘ write must be the identity");
        assert_eq!(
            records_to_text(&parsed).unwrap(),
            text,
            "write ∘ parse must be byte-identical"
        );
    }

    #[test]
    fn unencodable_names_and_payload_lines_are_rejected() {
        for name in ["", "two words", "tab\tbed", "new\nline"] {
            let record = JournalRecord::Unload {
                name: name.to_string(),
            };
            assert!(
                matches!(record.to_text(), Err(JournalError::UnencodableText { .. })),
                "{name:?}"
            );
        }
        let record = JournalRecord::Load {
            name: "ok".to_string(),
            generation: 0,
            payload: vec!["fine".to_string(), "torn\nline".to_string()],
        };
        assert!(matches!(
            record.to_text(),
            Err(JournalError::UnencodableText { .. })
        ));
    }

    #[test]
    fn malformed_text_reports_the_line() {
        let err = records_from_text("not a journal\n").unwrap_err();
        assert!(
            matches!(err, JournalError::Malformed { line: 1, .. }),
            "{err:?}"
        );
        let text = format!("{JOURNAL_FORMAT}\nmark 0\nfrobnicate x\n");
        let err = records_from_text(&text).unwrap_err();
        assert!(
            matches!(err, JournalError::Malformed { line: 3, .. }),
            "{err:?}"
        );
        // A counted payload that runs past EOF is torn, not silently short.
        let text = format!("{JOURNAL_FORMAT}\nload a 0 3\nonly\n");
        let err = records_from_text(&text).unwrap_err();
        assert!(matches!(err, JournalError::Malformed { .. }), "{err:?}");
    }

    #[test]
    fn open_replay_append_reopen_recovers_the_live_set() {
        let dir = tempdir("reopen");
        {
            let journal = Journal::open(&dir).unwrap();
            assert_eq!(journal.mark(), 0);
            assert!(journal.is_empty());
            assert_eq!(journal.status_counters()[0].1, 0, "nothing to replay");
            journal.record_load("alpha", 0, &payload()).unwrap();
            journal.record_load("beta", 1, &payload()).unwrap();
            journal.record_unload("alpha").unwrap();
            assert_eq!(journal.mark(), 2);
        }
        let journal = Journal::open(&dir).unwrap();
        assert_eq!(journal.mark(), 2, "the floor survives the unload");
        let live = journal.live_instances();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].name, "beta");
        assert_eq!(live[0].generation, 1);
        assert_eq!(live[0].payload, payload());
        assert!(!journal.recovered_torn_tail());
        let counters = journal.status_counters();
        let get = |key: &str| {
            counters
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("no counter `{key}`"))
                .1
        };
        // Boot snapshot (mark) + 3 appends survived the first process.
        assert_eq!(get("journal-entries-replayed"), 4);
        assert!(get("journal-bytes-replayed") > 0);
        assert_eq!(get("journal-compactions"), 1, "boot snapshot compacts");
        assert_eq!(get("journal-live-instances"), 1);
        assert_eq!(get("journal-generation-mark"), 2);

        // The boot snapshot is canonical: a third open replays exactly the
        // compacted form (mark + one load).
        drop(journal);
        let journal = Journal::open(&dir).unwrap();
        assert_eq!(journal.status_counters()[0].1, 2);
        assert_eq!(journal.live_instances().len(), 1);
    }

    #[test]
    fn a_torn_tail_is_discarded_and_healed() {
        let dir = tempdir("torn");
        {
            let journal = Journal::open(&dir).unwrap();
            journal.record_load("alpha", 0, &payload()).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        // Simulate a crash mid-append: a load head whose payload never made
        // it to disk.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"load beta 1 5\ntasks 1\n").unwrap();
        drop(file);
        let journal = Journal::open(&dir).unwrap();
        assert!(journal.recovered_torn_tail());
        let live = journal.live_instances();
        assert_eq!(live.len(), 1, "the torn load must not survive");
        assert_eq!(live[0].name, "alpha");
        assert_eq!(
            journal.mark(),
            1,
            "the torn record's generation is not durable"
        );
        drop(journal);
        // The boot snapshot healed the file: re-opening sees no tear.
        let journal = Journal::open(&dir).unwrap();
        assert!(!journal.recovered_torn_tail());
        assert_eq!(journal.live_instances().len(), 1);
    }

    /// A torn runtime append whose immediate heal succeeds: the record is
    /// durable, nothing was appended after the torn bytes, and the next
    /// boot replays every acknowledged record.
    #[test]
    fn a_failed_append_heals_by_compaction_instead_of_appending_after_the_tear() {
        let dir = tempdir("append-fail");
        let journal = Journal::open(&dir).unwrap();
        journal.record_load("alpha", 0, &payload()).unwrap();
        journal.inject_failures(1, 0);
        journal.record_load("beta", 1, &payload()).unwrap();
        journal.record_load("gamma", 2, &payload()).unwrap();
        drop(journal);
        let journal = Journal::open(&dir).unwrap();
        assert!(
            !journal.recovered_torn_tail(),
            "the heal must rewrite the torn tail away"
        );
        let names: Vec<String> = journal
            .live_instances()
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
    }

    /// A torn append whose heal also fails poisons the writer: the failed
    /// record is reported, and the *next* append must compact from the
    /// shadow instead of appending after the torn bytes — so no later
    /// acknowledged record is ever stranded behind the tear.
    #[test]
    fn a_poisoned_writer_compacts_on_the_next_append() {
        let dir = tempdir("poisoned");
        let journal = Journal::open(&dir).unwrap();
        journal.record_load("alpha", 0, &payload()).unwrap();
        journal.inject_failures(1, 1);
        let err = journal.record_load("beta", 1, &payload()).unwrap_err();
        assert!(matches!(err, JournalError::Io { .. }), "{err:?}");
        journal.record_load("gamma", 2, &payload()).unwrap();
        drop(journal);
        let journal = Journal::open(&dir).unwrap();
        assert!(!journal.recovered_torn_tail(), "the healing compaction");
        let names: Vec<String> = journal
            .live_instances()
            .into_iter()
            .map(|r| r.name)
            .collect();
        // `beta` was answered with a journal-failed error but stayed live in
        // memory (the shadow mirrors the store), so the healing compaction
        // legitimately persists it alongside the acknowledged records.
        assert_eq!(names, ["alpha", "beta", "gamma"]);
    }

    /// Compaction and replay preserve load order (oldest first, reload
    /// refreshes), so a restarted store approximates pre-crash LRU recency
    /// instead of resetting it to name order.
    #[test]
    fn replay_and_compaction_preserve_load_order_for_recency() {
        let dir = tempdir("recency");
        {
            let journal = Journal::open(&dir).unwrap();
            journal.record_load("zeta", 0, &payload()).unwrap();
            journal.record_load("alpha", 1, &payload()).unwrap();
            journal.record_load("mid", 2, &payload()).unwrap();
            // Re-loading zeta makes it the most recent again.
            journal.record_load("zeta", 3, &payload()).unwrap();
        }
        let order = |journal: &Journal| -> Vec<String> {
            journal
                .live_instances()
                .into_iter()
                .map(|r| r.name)
                .collect()
        };
        let journal = Journal::open(&dir).unwrap();
        assert_eq!(order(&journal), ["alpha", "mid", "zeta"]);
        // The boot snapshot wrote the same order, so a third open agrees.
        drop(journal);
        let journal = Journal::open(&dir).unwrap();
        assert_eq!(order(&journal), ["alpha", "mid", "zeta"]);
    }

    /// Two journals on one data directory would interleave appends and
    /// corrupt each other; the second opener must be refused while the
    /// first lives, and succeed once the lock holder is gone.
    #[cfg(unix)]
    #[test]
    fn a_second_opener_of_the_same_data_dir_is_refused() {
        let dir = tempdir("locked");
        let first = Journal::open(&dir).unwrap();
        let err = Journal::open(&dir).unwrap_err();
        assert!(matches!(err, JournalError::Locked { .. }), "{err:?}");
        drop(first);
        Journal::open(&dir).expect("the lock must release with its holder");
    }

    #[test]
    fn foreign_files_are_refused() {
        let dir = tempdir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), "important notes\ndo not delete\n").unwrap();
        let err = Journal::open(&dir).unwrap_err();
        assert!(
            matches!(err, JournalError::Malformed { line: 1, .. }),
            "{err:?}"
        );
        // The file was not clobbered.
        let kept = std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert!(kept.starts_with("important notes"), "{kept}");
    }

    #[test]
    fn churn_triggers_compaction_and_bounds_the_file() {
        let dir = tempdir("compact");
        let journal = Journal::open(&dir).unwrap();
        // 3 × COMPACT_EVERY loads of the same name: without compaction the
        // file would hold every historical load.
        for k in 0..(3 * COMPACT_EVERY) {
            journal.record_load("hot", k, &payload()).unwrap();
        }
        let counters = journal.status_counters();
        let compactions = counters
            .iter()
            .find(|(k, _)| k == "journal-compactions")
            .unwrap()
            .1;
        assert_eq!(compactions, 3);
        let text = std::fs::read_to_string(journal.path()).unwrap();
        let snapshot_len = records_to_text(&[
            JournalRecord::Mark {
                generation: journal.mark(),
            },
            JournalRecord::Load {
                name: "hot".to_string(),
                generation: 3 * COMPACT_EVERY - 1,
                payload: payload(),
            },
        ])
        .unwrap()
        .len();
        assert!(
            text.len() < snapshot_len + (COMPACT_EVERY as usize) * 64,
            "file must stay bounded by live set + one compaction window: {} bytes",
            text.len()
        );
        // And the compacted file replays to exactly the last load.
        drop(journal);
        let journal = Journal::open(&dir).unwrap();
        let live = journal.live_instances();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].generation, 3 * COMPACT_EVERY - 1);
        assert_eq!(journal.mark(), 3 * COMPACT_EVERY);
    }
}
