//! # mf-server — a long-lived solve/evaluate server
//!
//! The one-shot CLI pays instance parsing, evaluator construction and thread
//! pool spin-up on every invocation. This crate keeps all three **resident**:
//! a server process owns an [`InstanceStore`](store::InstanceStore) of named
//! instances, a shared rayon pool for the portfolio race, and per-session
//! [`EvaluatorSnapshot`](mf_core::EvaluatorSnapshot) state that `whatif`
//! probes resume in `O(1)` — and answers queries over a line-delimited text
//! protocol, [`proto`], via TCP (thread per connection) or a stdio pipe.
//!
//! Sessions start in `mf-proto v1`; a `hello mf-proto v2` handshake unlocks
//! `batch N` envelopes (many requests, one round trip, answers in request
//! order), the `status-export` JSON report, and the keyed-cache counters in
//! `stats`. Each engine serves repeated `evaluate`s of an unchanged
//! instance from a keyed [`EvaluateCache`] — (store name, load generation,
//! mapping fingerprint) → full breakdown plus pristine evaluator snapshot —
//! and a
//! sharded [`Router`] tier (`mf serve --workers N`) hashes instance names
//! across `N` worker engines behind the same [`Handler`] interface.
//!
//! Answers are **bit-identical to the equivalent one-shot CLI run**: solve
//! requests use the same default seeds as `microfactory solve`, and the
//! portfolio outcome is bit-identical for every thread count, so a resident
//! server is a pure performance upgrade, never a numerical fork — and the
//! router is pinned byte-identical to a single engine for any worker count.
//!
//! ```
//! use mf_server::engine::Engine;
//! use mf_server::server::serve_stdio;
//!
//! let engine = Engine::new(1);
//! let mut output = Vec::new();
//! serve_stdio(&engine, "list\nshutdown\n".as_bytes(), &mut output).unwrap();
//! let text = String::from_utf8(output).unwrap();
//! assert!(text.starts_with("mf-proto v1\n"));
//! assert!(text.contains("ok shutdown"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod errors;
pub mod journal;
pub mod obs;
pub mod proto;
pub mod router;
pub mod server;
pub mod stats;
pub mod store;

pub use cache::{CachedEvaluation, EvaluateCache, EVALUATE_CACHE_CAP};
pub use client::{AnytimeSolution, Client, ClientError, Evaluation, Solution};
pub use engine::{Engine, Session, DEFAULT_HEURISTIC_SEED};
pub use errors::EngineError;
pub use journal::{
    records_from_text, records_to_text, Journal, JournalError, JournalRecord, JournalResult,
    RecoveredInstance, COMPACT_EVERY, JOURNAL_FILE, JOURNAL_FORMAT, LOCK_FILE,
};
pub use obs::{ObsConfig, DEFAULT_SLOW_THRESHOLD_NS, TRACKED_COMMANDS};
pub use proto::{
    request_from_text, request_to_text, response_from_text, response_to_text, text_payload,
    ErrorCode, GapReport, InstanceInfo, Probe, ProtoError, ProtoReader, ProtoResult, ProtoVersion,
    Request, Response, SolveMethod, CURRENT_VERSION, GREETING, PROTO_NAME,
};
pub use router::{Router, RouterSession};
pub use server::{run_session, serve_stdio, Handler, Server, MAX_ACCEPT_FAILURES};
pub use stats::{StatsReport, STATS_FORMAT};
pub use store::{InstanceStore, StoredInstance};
