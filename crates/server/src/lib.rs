//! # mf-server — a long-lived solve/evaluate server
//!
//! The one-shot CLI pays instance parsing, evaluator construction and thread
//! pool spin-up on every invocation. This crate keeps all three **resident**:
//! a server process owns an [`InstanceStore`](store::InstanceStore) of named
//! instances, a shared rayon pool for the portfolio race, and per-session
//! [`EvaluatorSnapshot`](mf_core::EvaluatorSnapshot) state that `whatif`
//! probes resume in `O(1)` — and answers queries over a line-delimited text
//! protocol, [`proto`] (`mf-proto v1`), via TCP (thread per connection) or a
//! stdio pipe.
//!
//! Answers are **bit-identical to the equivalent one-shot CLI run**: solve
//! requests use the same default seeds as `microfactory solve`, and the
//! portfolio outcome is bit-identical for every thread count, so a resident
//! server is a pure performance upgrade, never a numerical fork.
//!
//! ```
//! use mf_server::engine::Engine;
//! use mf_server::server::serve_stdio;
//!
//! let engine = Engine::new(1);
//! let mut output = Vec::new();
//! serve_stdio(&engine, "list\nshutdown\n".as_bytes(), &mut output).unwrap();
//! let text = String::from_utf8(output).unwrap();
//! assert!(text.starts_with("mf-proto v1\n"));
//! assert!(text.contains("ok shutdown"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod engine;
pub mod proto;
pub mod server;
pub mod store;

pub use client::{Client, ClientError};
pub use engine::{Engine, Session, DEFAULT_HEURISTIC_SEED};
pub use proto::{
    request_from_text, request_to_text, response_from_text, response_to_text, text_payload,
    ErrorCode, InstanceInfo, Probe, ProtoError, ProtoReader, ProtoResult, Request, Response,
    SolveMethod, GREETING,
};
pub use server::{run_session, serve_stdio, Server};
pub use store::{InstanceStore, StoredInstance};
