//! Serving-tier observability wiring: clock injection, per-command request
//! latency histograms, the slow-request log, and the optional `mf-trace v1`
//! writer.
//!
//! Everything here is additive to the protocol: attaching an [`ObsConfig`]
//! (with a manual clock, a trace writer, any threshold) never changes a
//! byte of any response — latency lands in histograms exposed through the
//! `status-export` report, spans and slow-request records go to the trace
//! file, and the slow-request log goes to stderr. That invariant is what
//! keeps the golden transcripts byte-identical with tracing on.

use std::sync::Arc;

use mf_obs::{Clock, Histogram, HistogramSnapshot, MonotonicClock, SharedTraceWriter, TraceEvent};

/// Default slow-request threshold: 1 s.
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 1_000_000_000;

/// Every request keyword the engine tracks a latency histogram for, in the
/// fixed exposition order of the `histograms` block (the wire keywords of
/// `mf-proto v2`, in the dispatch table's order).
pub const TRACKED_COMMANDS: &[&str] = &[
    "hello",
    "batch",
    "status-export",
    "load",
    "unload",
    "list",
    "evaluate",
    "whatif",
    "solve",
    "stats",
    "shutdown",
];

/// Observability configuration of an engine or router.
///
/// The default is production wiring: a monotonic clock, no trace file, a
/// 1 s slow-request threshold. Tests inject a
/// [`ManualClock`](mf_obs::ManualClock) to make every measured duration —
/// and therefore every histogram bucket — deterministic.
#[derive(Clone)]
pub struct ObsConfig {
    /// The clock every latency measurement reads.
    pub clock: Arc<dyn Clock>,
    /// Where spans and slow-request records go (`None`: tracing off).
    pub trace: Option<Arc<SharedTraceWriter>>,
    /// Requests slower than this are logged to stderr and traced.
    pub slow_threshold_ns: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            clock: Arc::new(MonotonicClock::new()),
            trace: None,
            slow_threshold_ns: DEFAULT_SLOW_THRESHOLD_NS,
        }
    }
}

impl ObsConfig {
    /// Production wiring (monotonic clock, no trace, 1 s threshold).
    pub fn new() -> Self {
        ObsConfig::default()
    }

    /// Replaces the clock.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches a trace writer.
    pub fn with_trace(mut self, trace: Arc<SharedTraceWriter>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Overrides the slow-request threshold.
    pub fn with_slow_threshold_ns(mut self, threshold_ns: u64) -> Self {
        self.slow_threshold_ns = threshold_ns;
        self
    }
}

/// Per-engine observability state: the config plus one latency histogram
/// per tracked command. Recording is lock-free.
pub(crate) struct ObsState {
    config: ObsConfig,
    latency: Vec<Histogram>,
}

impl ObsState {
    pub(crate) fn new(config: ObsConfig) -> Self {
        ObsState {
            config,
            latency: TRACKED_COMMANDS.iter().map(|_| Histogram::new()).collect(),
        }
    }

    /// Current clock reading — the request-dispatch start mark.
    pub(crate) fn now_ns(&self) -> u64 {
        self.config.clock.now_ns()
    }

    /// Records one completed request: latency histogram, trace span, and —
    /// past the threshold — the slow-request log plus a trace record.
    pub(crate) fn observe_request(&self, keyword: &'static str, start_ns: u64) {
        let duration_ns = self.config.clock.now_ns().saturating_sub(start_ns);
        if let Some(index) = TRACKED_COMMANDS.iter().position(|&c| c == keyword) {
            self.latency[index].record(duration_ns);
        }
        if let Some(trace) = &self.config.trace {
            trace.append(&TraceEvent::Span {
                name: keyword.to_string(),
                start_ns,
                duration_ns,
            });
        }
        if duration_ns >= self.config.slow_threshold_ns {
            eprintln!(
                "mf-server: slow request: {keyword} took {} ms (threshold {} ms)",
                duration_ns / 1_000_000,
                self.config.slow_threshold_ns / 1_000_000,
            );
            if let Some(trace) = &self.config.trace {
                trace.append(&TraceEvent::Slow {
                    command: keyword.to_string(),
                    duration_ns,
                    threshold_ns: self.config.slow_threshold_ns,
                });
            }
        }
    }

    /// Appends one record to the trace file, if tracing is on. Anytime
    /// solves route their incumbent/bound improvements here as `round`
    /// records.
    pub(crate) fn trace_event(&self, event: &TraceEvent) {
        if let Some(trace) = &self.config.trace {
            trace.append(event);
        }
    }

    /// Snapshots every per-command histogram, in [`TRACKED_COMMANDS`]
    /// order.
    pub(crate) fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        TRACKED_COMMANDS
            .iter()
            .zip(self.latency.iter())
            .map(|(command, histogram)| (command.to_string(), histogram.snapshot()))
            .collect()
    }
}
