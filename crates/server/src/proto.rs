//! `mf-proto v1` — the line-delimited text protocol of the serve loop.
//!
//! The protocol is styled after `mf-report v1` (`mf_experiments::persist`):
//! plain text, one record per line, multi-line payloads carried by an
//! explicit line count (requests) or closed by an `end` marker (responses),
//! and every `f64` written with Rust's shortest-round-trip formatting so
//! values survive a write→parse round trip **bit-for-bit**. A session opens
//! with the server greeting line `mf-proto v1`.
//!
//! ```text
//! C: load line6 18
//! C: # microfactory instance
//! C: tasks 6
//! C: …                         (16 more payload lines)
//! S: ok load line6 6 3 2
//! C: solve line6 heuristic SD-H2 seed 7
//! S: ok solve SD-H2 437.51948051948053 3 6
//! S: assign 0 1
//! S: …
//! S: end
//! C: shutdown
//! S: ok shutdown
//! ```
//!
//! Serialization is **canonical**: for any request or response value,
//! `parse(write(x)) == x` and `write(parse(write(x))) == write(x)` byte for
//! byte — the round-trip property `proto_roundtrip.rs` pins for every
//! variant. Malformed input produces a typed [`ProtoError`], never a panic.

use std::fmt::Write as _;
use std::io::BufRead;

/// The protocol magic, sent by the server as its greeting line.
pub const GREETING: &str = "mf-proto v1";

/// Errors raised while parsing or writing protocol lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The input ended in the middle of a request or response.
    UnexpectedEof {
        /// What was being parsed when the input ran out.
        context: &'static str,
    },
    /// A line did not match the grammar.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// A name or text field contains characters the wire format cannot carry.
    UnencodableText {
        /// The offending text.
        text: String,
    },
    /// An I/O error from the underlying reader.
    Io(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            ProtoError::Malformed { detail } => write!(f, "malformed protocol line: {detail}"),
            ProtoError::UnencodableText { text } => {
                write!(f, "text cannot be encoded on one protocol line: {text:?}")
            }
            ProtoError::Io(detail) => write!(f, "protocol I/O error: {detail}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e.to_string())
    }
}

/// Result alias for protocol operations.
pub type ProtoResult<T> = std::result::Result<T, ProtoError>;

fn malformed(detail: impl Into<String>) -> ProtoError {
    ProtoError::Malformed {
        detail: detail.into(),
    }
}

/// `true` for names the wire format can carry as a single token: non-empty
/// ASCII alphanumerics plus `.`, `_`, `-` and `#` (portfolio cell labels such
/// as `H6-H4w#1` travel through the same token slot as instance names).
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-' || b == b'#')
}

fn check_name(name: &str) -> ProtoResult<&str> {
    if valid_name(name) {
        Ok(name)
    } else {
        Err(ProtoError::UnencodableText {
            text: name.to_string(),
        })
    }
}

/// A payload line must not itself be a line separator.
fn check_payload_line(line: &str) -> ProtoResult<&str> {
    if line.contains('\n') || line.contains('\r') {
        Err(ProtoError::UnencodableText {
            text: line.to_string(),
        })
    } else {
        Ok(line)
    }
}

/// How a `solve` request wants the mapping computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveMethod {
    /// One registry heuristic (`"H4w"`, `"SD-H2"`, …; canonical casing).
    Heuristic(String),
    /// The parallel search portfolio on the server's shared pool.
    Portfolio,
}

/// A what-if probe against the session's resident evaluator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Move one task to a machine.
    Move {
        /// Task index.
        task: usize,
        /// Target machine index.
        machine: usize,
    },
    /// Exchange the machines of two tasks.
    Swap {
        /// First task index.
        a: usize,
        /// Second task index.
        b: usize,
    },
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Load (or replace) a named instance from inline `mf_core::textio`
    /// instance text.
    Load {
        /// Store name of the instance.
        name: String,
        /// Instance text, one payload line per entry.
        payload: Vec<String>,
    },
    /// Drop a named instance from the store.
    Unload {
        /// Store name.
        name: String,
    },
    /// List the resident instances.
    List,
    /// Evaluate a mapping (inline `mf_core::textio` mapping text) against a
    /// resident instance; refreshes the session's resident evaluator.
    Evaluate {
        /// Store name of the instance.
        name: String,
        /// Mapping text, one payload line per entry.
        payload: Vec<String>,
    },
    /// What-if probe against the resident evaluator state the session's last
    /// `evaluate`/`solve` on this instance left behind.
    WhatIf {
        /// Store name of the instance.
        name: String,
        /// The probe.
        probe: Probe,
    },
    /// Compute a mapping for a resident instance.
    Solve {
        /// Store name of the instance.
        name: String,
        /// Solver choice.
        method: SolveMethod,
        /// Per-request seed; `None` uses the defaults of the equivalent
        /// one-shot CLI run (so answers are bit-identical to it).
        seed: Option<u64>,
    },
    /// Server statistics counters.
    Stats,
    /// End the session; a TCP server stops accepting new connections.
    Shutdown,
}

/// One named instance in a `list` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceInfo {
    /// Store name.
    pub name: String,
    /// Task count.
    pub tasks: usize,
    /// Machine count.
    pub machines: usize,
    /// Task-type count.
    pub types: usize,
}

/// Error classes a request can fail with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line (or its arguments) did not make sense.
    BadRequest,
    /// No resident instance under that name.
    UnknownInstance,
    /// The inline instance/mapping payload was rejected by `textio` or does
    /// not fit the instance.
    InvalidPayload,
    /// The solver produced no mapping (e.g. more task types than machines).
    Infeasible,
    /// `whatif` without resident evaluator state for the instance in this
    /// session.
    NoResidentState,
}

impl ErrorCode {
    /// The wire token of the code.
    pub fn token(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownInstance => "unknown-instance",
            ErrorCode::InvalidPayload => "invalid-payload",
            ErrorCode::Infeasible => "infeasible",
            ErrorCode::NoResidentState => "no-resident-state",
        }
    }

    fn from_token(token: &str) -> Option<Self> {
        Some(match token {
            "bad-request" => ErrorCode::BadRequest,
            "unknown-instance" => ErrorCode::UnknownInstance,
            "invalid-payload" => ErrorCode::InvalidPayload,
            "infeasible" => ErrorCode::Infeasible,
            "no-resident-state" => ErrorCode::NoResidentState,
            _ => return None,
        })
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Instance loaded (or replaced).
    Loaded {
        /// Store name.
        name: String,
        /// Task count.
        tasks: usize,
        /// Machine count.
        machines: usize,
        /// Task-type count.
        types: usize,
    },
    /// Instance dropped.
    Unloaded {
        /// Store name.
        name: String,
    },
    /// The resident instances, sorted by name.
    List(Vec<InstanceInfo>),
    /// Mapping evaluated. Floats are lossless (`{}` formatting).
    Evaluated {
        /// System period (ms), bit-identical to the one-shot evaluation.
        period: f64,
        /// Critical machine index (lowest index on exact ties).
        critical: usize,
        /// Per-machine loads (ms), indexed by machine.
        loads: Vec<f64>,
    },
    /// What-if probe answered from resident evaluator state.
    WhatIf {
        /// Candidate system period (ms).
        period: f64,
        /// Candidate critical machine index.
        critical: usize,
    },
    /// Mapping computed.
    Solved {
        /// Winning method label (registry name, or portfolio cell label).
        label: String,
        /// Achieved system period (ms), bit-identical to the one-shot run.
        period: f64,
        /// Machine count of the mapping.
        machines: usize,
        /// Machine index per task, in task order.
        assignment: Vec<usize>,
    },
    /// Statistics counters, in the server's fixed presentation order.
    Stats(Vec<(String, u64)>),
    /// Session closed by request.
    Shutdown,
    /// The request failed.
    Error {
        /// Error class.
        code: ErrorCode,
        /// Human-readable detail (single line).
        detail: String,
    },
}

impl Response {
    /// Convenience constructor for error responses.
    pub fn error(code: ErrorCode, detail: impl Into<String>) -> Self {
        Response::Error {
            code,
            detail: detail.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Serializes a request in canonical wire form (trailing newline included).
pub fn request_to_text(request: &Request) -> ProtoResult<String> {
    let mut out = String::new();
    match request {
        Request::Load { name, payload } => {
            let _ = writeln!(out, "load {} {}", check_name(name)?, payload.len());
            for line in payload {
                let _ = writeln!(out, "{}", check_payload_line(line)?);
            }
        }
        Request::Unload { name } => {
            let _ = writeln!(out, "unload {}", check_name(name)?);
        }
        Request::List => {
            let _ = writeln!(out, "list");
        }
        Request::Evaluate { name, payload } => {
            let _ = writeln!(out, "evaluate {} {}", check_name(name)?, payload.len());
            for line in payload {
                let _ = writeln!(out, "{}", check_payload_line(line)?);
            }
        }
        Request::WhatIf { name, probe } => match probe {
            Probe::Move { task, machine } => {
                let _ = writeln!(out, "whatif {} move {task} {machine}", check_name(name)?);
            }
            Probe::Swap { a, b } => {
                let _ = writeln!(out, "whatif {} swap {a} {b}", check_name(name)?);
            }
        },
        Request::Solve { name, method, seed } => {
            let _ = write!(out, "solve {}", check_name(name)?);
            match method {
                SolveMethod::Heuristic(heuristic) => {
                    let _ = write!(out, " heuristic {}", check_name(heuristic)?);
                }
                SolveMethod::Portfolio => {
                    let _ = write!(out, " portfolio");
                }
            }
            if let Some(seed) = seed {
                let _ = write!(out, " seed {seed}");
            }
            out.push('\n');
        }
        Request::Stats => {
            let _ = writeln!(out, "stats");
        }
        Request::Shutdown => {
            let _ = writeln!(out, "shutdown");
        }
    }
    Ok(out)
}

/// Serializes a response in canonical wire form (trailing newline included).
pub fn response_to_text(response: &Response) -> ProtoResult<String> {
    let mut out = String::new();
    match response {
        Response::Loaded {
            name,
            tasks,
            machines,
            types,
        } => {
            let _ = writeln!(
                out,
                "ok load {} {tasks} {machines} {types}",
                check_name(name)?
            );
        }
        Response::Unloaded { name } => {
            let _ = writeln!(out, "ok unload {}", check_name(name)?);
        }
        Response::List(entries) => {
            let _ = writeln!(out, "ok list {}", entries.len());
            for entry in entries {
                let _ = writeln!(
                    out,
                    "instance {} {} {} {}",
                    check_name(&entry.name)?,
                    entry.tasks,
                    entry.machines,
                    entry.types
                );
            }
            let _ = writeln!(out, "end");
        }
        Response::Evaluated {
            period,
            critical,
            loads,
        } => {
            let _ = writeln!(out, "ok evaluate {period} {critical}");
            for (u, load) in loads.iter().enumerate() {
                let _ = writeln!(out, "load {u} {load}");
            }
            let _ = writeln!(out, "end");
        }
        Response::WhatIf { period, critical } => {
            let _ = writeln!(out, "ok whatif {period} {critical}");
        }
        Response::Solved {
            label,
            period,
            machines,
            assignment,
        } => {
            let _ = writeln!(
                out,
                "ok solve {} {period} {machines} {}",
                check_name(label)?,
                assignment.len()
            );
            for (task, machine) in assignment.iter().enumerate() {
                let _ = writeln!(out, "assign {task} {machine}");
            }
            let _ = writeln!(out, "end");
        }
        Response::Stats(entries) => {
            let _ = writeln!(out, "ok stats {}", entries.len());
            for (key, value) in entries {
                let _ = writeln!(out, "stat {} {value}", check_name(key)?);
            }
            let _ = writeln!(out, "end");
        }
        Response::Shutdown => {
            let _ = writeln!(out, "ok shutdown");
        }
        Response::Error { code, detail } => {
            if detail.contains('\n') || detail.contains('\r') {
                return Err(ProtoError::UnencodableText {
                    text: detail.clone(),
                });
            }
            let _ = writeln!(out, "err {} {detail}", code.token());
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Upper bound on any `Vec::with_capacity` driven by a wire-supplied count.
/// Real counts above this still parse — they just grow by pushing.
const WIRE_CAPACITY_CAP: usize = 1024;

/// A line source over any [`BufRead`], tracking EOF and stream desync.
#[derive(Debug)]
pub struct ProtoReader<R> {
    reader: R,
    desynced: bool,
}

impl<R: BufRead> ProtoReader<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R) -> Self {
        ProtoReader {
            reader,
            desynced: false,
        }
    }

    /// `true` once a parse failure left the stream offset untrustworthy —
    /// a `load`/`evaluate` head that failed before its payload count was
    /// known, so the following lines may be payload, not requests. A serve
    /// loop should answer the error and close the session rather than
    /// execute payload lines as commands.
    pub fn is_desynced(&self) -> bool {
        self.desynced
    }

    /// The next line without its terminator; `None` at EOF.
    fn next_line(&mut self) -> ProtoResult<Option<String>> {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// The next non-empty line; `None` at EOF.
    fn next_content_line(&mut self) -> ProtoResult<Option<String>> {
        loop {
            match self.next_line()? {
                None => return Ok(None),
                Some(line) if line.trim().is_empty() => continue,
                Some(line) => return Ok(Some(line)),
            }
        }
    }

    /// Reads exactly `count` payload lines (payload lines may be blank-ish
    /// comment lines of the embedded text format, so no blank skipping).
    fn payload(&mut self, count: usize, context: &'static str) -> ProtoResult<Vec<String>> {
        // Counts come off the wire: cap the pre-allocation so a hostile
        // header cannot request petabytes before a single line is read
        // (growth beyond the cap is amortized push).
        let mut lines = Vec::with_capacity(count.min(WIRE_CAPACITY_CAP));
        for _ in 0..count {
            match self.next_line()? {
                Some(line) => lines.push(line),
                None => return Err(ProtoError::UnexpectedEof { context }),
            }
        }
        Ok(lines)
    }

    /// Reads the server greeting line (`None` at EOF). The caller compares
    /// it against [`GREETING`].
    pub fn read_greeting(&mut self) -> ProtoResult<Option<String>> {
        self.next_content_line()
    }

    /// Reads one request; `None` at a clean EOF (before any request line).
    pub fn read_request(&mut self) -> ProtoResult<Option<Request>> {
        let Some(line) = self.next_content_line()? else {
            return Ok(None);
        };
        self.parse_request_head(&line).map(Some)
    }

    fn parse_request_head(&mut self, line: &str) -> ProtoResult<Request> {
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("content lines are non-empty");
        let request = match keyword {
            "load" | "evaluate" => {
                // Until the payload count is parsed, any failure leaves the
                // payload lines unconsumed — mark the stream desynced so the
                // serve loop doesn't execute them as commands.
                self.desynced = true;
                let name = parse_name(tokens.next(), keyword)?;
                let count = parse_count(tokens.next(), keyword)?;
                reject_extra(tokens.next(), line)?;
                self.desynced = false;
                let payload = self.payload(
                    count,
                    if keyword == "load" {
                        "load payload"
                    } else {
                        "evaluate payload"
                    },
                )?;
                for candidate in &payload {
                    check_payload_line(candidate)?;
                }
                if keyword == "load" {
                    Request::Load { name, payload }
                } else {
                    Request::Evaluate { name, payload }
                }
            }
            "unload" => {
                let name = parse_name(tokens.next(), keyword)?;
                reject_extra(tokens.next(), line)?;
                Request::Unload { name }
            }
            "list" => {
                reject_extra(tokens.next(), line)?;
                Request::List
            }
            "whatif" => {
                let name = parse_name(tokens.next(), keyword)?;
                let probe = match tokens.next() {
                    Some("move") => Probe::Move {
                        task: parse_index(tokens.next(), "whatif task")?,
                        machine: parse_index(tokens.next(), "whatif machine")?,
                    },
                    Some("swap") => Probe::Swap {
                        a: parse_index(tokens.next(), "whatif first task")?,
                        b: parse_index(tokens.next(), "whatif second task")?,
                    },
                    other => {
                        return Err(malformed(format!(
                            "expected `move` or `swap`, found `{}`",
                            other.unwrap_or("")
                        )))
                    }
                };
                reject_extra(tokens.next(), line)?;
                Request::WhatIf { name, probe }
            }
            "solve" => {
                let name = parse_name(tokens.next(), keyword)?;
                let method = match tokens.next() {
                    Some("heuristic") => {
                        SolveMethod::Heuristic(parse_name(tokens.next(), "heuristic")?)
                    }
                    Some("portfolio") => SolveMethod::Portfolio,
                    other => {
                        return Err(malformed(format!(
                            "expected `heuristic <name>` or `portfolio`, found `{}`",
                            other.unwrap_or("")
                        )))
                    }
                };
                let seed = match tokens.next() {
                    None => None,
                    Some("seed") => Some(parse_u64(tokens.next(), "seed")?),
                    Some(other) => {
                        return Err(malformed(format!("unexpected token `{other}`")));
                    }
                };
                reject_extra(tokens.next(), line)?;
                Request::Solve { name, method, seed }
            }
            "stats" => {
                reject_extra(tokens.next(), line)?;
                Request::Stats
            }
            "shutdown" => {
                reject_extra(tokens.next(), line)?;
                Request::Shutdown
            }
            other => {
                return Err(malformed(format!(
                    "unknown request `{other}` (expected load, unload, list, evaluate, \
                     whatif, solve, stats or shutdown)"
                )))
            }
        };
        Ok(request)
    }

    /// Reads one response; `None` at a clean EOF.
    pub fn read_response(&mut self) -> ProtoResult<Option<Response>> {
        let Some(line) = self.next_content_line()? else {
            return Ok(None);
        };
        self.parse_response_head(&line).map(Some)
    }

    fn parse_response_head(&mut self, line: &str) -> ProtoResult<Response> {
        let mut tokens = line.split_whitespace();
        match tokens.next().expect("content lines are non-empty") {
            "ok" => {}
            "err" => {
                let code_token = tokens
                    .next()
                    .ok_or_else(|| malformed("`err` without a code"))?;
                let code = ErrorCode::from_token(code_token)
                    .ok_or_else(|| malformed(format!("unknown error code `{code_token}`")))?;
                let rest = line
                    .splitn(3, ' ')
                    .nth(2)
                    .ok_or_else(|| malformed("`err` without a detail message"))?;
                return Ok(Response::Error {
                    code,
                    detail: rest.to_string(),
                });
            }
            other => {
                return Err(malformed(format!(
                    "expected `ok …` or `err …`, found `{other}`"
                )))
            }
        }
        let verb = tokens
            .next()
            .ok_or_else(|| malformed("`ok` without a verb"))?;
        let response = match verb {
            "load" => Response::Loaded {
                name: parse_name(tokens.next(), "loaded name")?,
                tasks: parse_count(tokens.next(), "task count")?,
                machines: parse_count(tokens.next(), "machine count")?,
                types: parse_count(tokens.next(), "type count")?,
            },
            "unload" => Response::Unloaded {
                name: parse_name(tokens.next(), "unloaded name")?,
            },
            "list" => {
                let count = parse_count(tokens.next(), "list count")?;
                reject_extra(tokens.next(), line)?;
                let mut entries = Vec::with_capacity(count.min(WIRE_CAPACITY_CAP));
                for _ in 0..count {
                    let entry = self.next_content_line()?.ok_or(ProtoError::UnexpectedEof {
                        context: "list entries",
                    })?;
                    let mut t = entry.split_whitespace();
                    match t.next() {
                        Some("instance") => {}
                        _ => return Err(malformed(format!("expected `instance …`: `{entry}`"))),
                    }
                    entries.push(InstanceInfo {
                        name: parse_name(t.next(), "instance name")?,
                        tasks: parse_count(t.next(), "task count")?,
                        machines: parse_count(t.next(), "machine count")?,
                        types: parse_count(t.next(), "type count")?,
                    });
                    reject_extra(t.next(), &entry)?;
                }
                self.expect_end("list")?;
                return Ok(Response::List(entries));
            }
            "evaluate" => {
                let period = parse_f64(tokens.next(), "period")?;
                let critical = parse_index(tokens.next(), "critical machine")?;
                reject_extra(tokens.next(), line)?;
                let mut loads = Vec::new();
                loop {
                    let entry = self.next_content_line()?.ok_or(ProtoError::UnexpectedEof {
                        context: "evaluate loads",
                    })?;
                    if entry == "end" {
                        break;
                    }
                    let mut t = entry.split_whitespace();
                    match t.next() {
                        Some("load") => {}
                        _ => return Err(malformed(format!("expected `load …`: `{entry}`"))),
                    }
                    let index = parse_index(t.next(), "machine index")?;
                    if index != loads.len() {
                        return Err(malformed(format!(
                            "load lines out of order: expected machine {}, found {index}",
                            loads.len()
                        )));
                    }
                    loads.push(parse_f64(t.next(), "machine load")?);
                    reject_extra(t.next(), &entry)?;
                }
                return Ok(Response::Evaluated {
                    period,
                    critical,
                    loads,
                });
            }
            "whatif" => Response::WhatIf {
                period: parse_f64(tokens.next(), "period")?,
                critical: parse_index(tokens.next(), "critical machine")?,
            },
            "solve" => {
                let label = parse_name(tokens.next(), "solve label")?;
                let period = parse_f64(tokens.next(), "period")?;
                let machines = parse_count(tokens.next(), "machine count")?;
                let tasks = parse_count(tokens.next(), "task count")?;
                reject_extra(tokens.next(), line)?;
                let mut assignment = Vec::with_capacity(tasks.min(WIRE_CAPACITY_CAP));
                for _ in 0..tasks {
                    let entry = self.next_content_line()?.ok_or(ProtoError::UnexpectedEof {
                        context: "solve assignment",
                    })?;
                    let mut t = entry.split_whitespace();
                    match t.next() {
                        Some("assign") => {}
                        _ => return Err(malformed(format!("expected `assign …`: `{entry}`"))),
                    }
                    let task = parse_index(t.next(), "task index")?;
                    if task != assignment.len() {
                        return Err(malformed(format!(
                            "assign lines out of order: expected task {}, found {task}",
                            assignment.len()
                        )));
                    }
                    assignment.push(parse_index(t.next(), "machine index")?);
                    reject_extra(t.next(), &entry)?;
                }
                self.expect_end("solve")?;
                return Ok(Response::Solved {
                    label,
                    period,
                    machines,
                    assignment,
                });
            }
            "stats" => {
                let count = parse_count(tokens.next(), "stats count")?;
                reject_extra(tokens.next(), line)?;
                let mut entries = Vec::with_capacity(count.min(WIRE_CAPACITY_CAP));
                for _ in 0..count {
                    let entry = self.next_content_line()?.ok_or(ProtoError::UnexpectedEof {
                        context: "stats entries",
                    })?;
                    let mut t = entry.split_whitespace();
                    match t.next() {
                        Some("stat") => {}
                        _ => return Err(malformed(format!("expected `stat …`: `{entry}`"))),
                    }
                    entries.push((
                        parse_name(t.next(), "stat key")?,
                        parse_u64(t.next(), "stat value")?,
                    ));
                    reject_extra(t.next(), &entry)?;
                }
                self.expect_end("stats")?;
                return Ok(Response::Stats(entries));
            }
            "shutdown" => Response::Shutdown,
            other => return Err(malformed(format!("unknown response verb `{other}`"))),
        };
        // Single-line responses reach here (block responses returned above);
        // the live iterator holds exactly the unconsumed tail of the line.
        reject_extra(tokens.next(), line)?;
        Ok(response)
    }

    fn expect_end(&mut self, context: &'static str) -> ProtoResult<()> {
        match self.next_content_line()? {
            Some(line) if line == "end" => Ok(()),
            Some(line) => Err(malformed(format!("expected `end`, found `{line}`"))),
            None => Err(ProtoError::UnexpectedEof { context }),
        }
    }
}

fn parse_name(token: Option<&str>, what: &str) -> ProtoResult<String> {
    let token = token.ok_or_else(|| malformed(format!("missing {what} name")))?;
    if valid_name(token) {
        Ok(token.to_string())
    } else {
        Err(malformed(format!(
            "invalid {what} name `{token}` (ASCII letters, digits, `.`, `_`, `-`; \
             at most 64 characters)"
        )))
    }
}

fn parse_count(token: Option<&str>, what: &str) -> ProtoResult<usize> {
    token
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| malformed(format!("expected {what} (unsigned integer)")))
}

fn parse_index(token: Option<&str>, what: &str) -> ProtoResult<usize> {
    parse_count(token, what)
}

fn parse_u64(token: Option<&str>, what: &str) -> ProtoResult<u64> {
    token
        .and_then(|t| t.parse::<u64>().ok())
        .ok_or_else(|| malformed(format!("expected {what} (u64)")))
}

fn parse_f64(token: Option<&str>, what: &str) -> ProtoResult<f64> {
    token
        .and_then(|t| t.parse::<f64>().ok())
        .ok_or_else(|| malformed(format!("expected {what} (float)")))
}

fn reject_extra(token: Option<&str>, line: &str) -> ProtoResult<()> {
    match token {
        None => Ok(()),
        Some(extra) => Err(malformed(format!(
            "unexpected trailing token `{extra}` in `{line}`"
        ))),
    }
}

/// Splits a `mf_core::textio` document into protocol payload lines (the
/// inverse of joining a payload with `\n` before parsing it).
pub fn text_payload(text: &str) -> Vec<String> {
    text.lines().map(str::to_string).collect()
}

/// Parses exactly one request from a text buffer (convenience for tests and
/// the client's script translation).
pub fn request_from_text(text: &str) -> ProtoResult<Request> {
    let mut reader = ProtoReader::new(text.as_bytes());
    reader
        .read_request()?
        .ok_or(ProtoError::UnexpectedEof { context: "request" })
}

/// Parses exactly one response from a text buffer.
pub fn response_from_text(text: &str) -> ProtoResult<Response> {
    let mut reader = ProtoReader::new(text.as_bytes());
    reader.read_response()?.ok_or(ProtoError::UnexpectedEof {
        context: "response",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(valid_name("line6"));
        assert!(valid_name("a.b_c-d"));
        assert!(!valid_name(""));
        assert!(!valid_name("two words"));
        assert!(!valid_name("tab\there"));
        assert!(!valid_name(&"x".repeat(65)));
    }

    #[test]
    fn single_line_requests_round_trip() {
        for request in [
            Request::Unload { name: "a".into() },
            Request::List,
            Request::Stats,
            Request::Shutdown,
            Request::WhatIf {
                name: "inst".into(),
                probe: Probe::Move {
                    task: 3,
                    machine: 1,
                },
            },
            Request::WhatIf {
                name: "inst".into(),
                probe: Probe::Swap { a: 0, b: 5 },
            },
            Request::Solve {
                name: "inst".into(),
                method: SolveMethod::Heuristic("SD-H2".into()),
                seed: None,
            },
            Request::Solve {
                name: "inst".into(),
                method: SolveMethod::Portfolio,
                seed: Some(u64::MAX),
            },
        ] {
            let text = request_to_text(&request).unwrap();
            let parsed = request_from_text(&text).unwrap();
            assert_eq!(parsed, request);
            assert_eq!(request_to_text(&parsed).unwrap(), text);
        }
    }

    #[test]
    fn payload_requests_round_trip() {
        let request = Request::Load {
            name: "line".into(),
            payload: vec![
                "# comment".into(),
                "tasks 2".into(),
                "".into(),
                "  indented".into(),
            ],
        };
        let text = request_to_text(&request).unwrap();
        let parsed = request_from_text(&text).unwrap();
        assert_eq!(parsed, request);
        assert_eq!(request_to_text(&parsed).unwrap(), text);
    }

    #[test]
    fn truncated_payload_is_an_eof_error() {
        let err = request_from_text("load a 3\nonly one line\n").unwrap_err();
        assert!(matches!(err, ProtoError::UnexpectedEof { .. }), "{err}");
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            "frobnicate",
            "load",
            "load name",
            "load two words 0",
            "unload",
            "unload bad name",
            "list extra",
            "whatif a move 1",
            "whatif a shuffle 1 2",
            "solve a",
            "solve a exact",
            "solve a heuristic",
            "solve a portfolio seed",
            "solve a portfolio seed -3",
            "solve a portfolio seed 1 extra",
            "stats now",
            "shutdown please",
        ] {
            let err = request_from_text(&format!("{bad}\n")).unwrap_err();
            assert!(
                matches!(err, ProtoError::Malformed { .. }),
                "`{bad}` must be Malformed, was {err:?}"
            );
        }
    }

    #[test]
    fn responses_round_trip_with_lossless_floats() {
        for response in [
            Response::Loaded {
                name: "a".into(),
                tasks: 6,
                machines: 3,
                types: 2,
            },
            Response::Unloaded { name: "a".into() },
            Response::List(vec![
                InstanceInfo {
                    name: "a".into(),
                    tasks: 1,
                    machines: 2,
                    types: 1,
                },
                InstanceInfo {
                    name: "b".into(),
                    tasks: 100,
                    machines: 20,
                    types: 5,
                },
            ]),
            Response::List(Vec::new()),
            Response::Evaluated {
                period: 1.0 / 3.0,
                critical: 1,
                loads: vec![f64::MIN_POSITIVE, 437.519_480_519_480_5, 0.0],
            },
            Response::WhatIf {
                period: 1e300,
                critical: 0,
            },
            Response::Solved {
                label: "H6-H4w#1".into(),
                period: 12345.678901234567,
                machines: 3,
                assignment: vec![0, 2, 1, 1],
            },
            Response::Stats(vec![("requests".into(), 7), ("errors".into(), 0)]),
            Response::Shutdown,
            Response::Error {
                code: ErrorCode::UnknownInstance,
                detail: "no instance named `x` is loaded".into(),
            },
        ] {
            let text = response_to_text(&response).unwrap();
            let parsed = response_from_text(&text).unwrap();
            if let (
                Response::Evaluated {
                    period: a,
                    loads: la,
                    ..
                },
                Response::Evaluated {
                    period: b,
                    loads: lb,
                    ..
                },
            ) = (&parsed, &response)
            {
                assert_eq!(a.to_bits(), b.to_bits());
                for (x, y) in la.iter().zip(lb) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            assert_eq!(parsed, response);
            assert_eq!(response_to_text(&parsed).unwrap(), text);
        }
    }

    #[test]
    fn malformed_responses_are_typed_errors() {
        for bad in [
            "yes",
            "ok",
            "ok frobnicate",
            "ok load a x 3 2",
            "ok list 1\nnot an instance line\nend",
            "ok evaluate 1.5 0\nload 1 2.0\nend",
            "ok solve a 1.5 3 1\nassign 1 0\nend",
            "ok shutdown now",
            "err",
            "err what happened",
        ] {
            let err = response_from_text(&format!("{bad}\n")).unwrap_err();
            assert!(
                matches!(
                    err,
                    ProtoError::Malformed { .. } | ProtoError::UnexpectedEof { .. }
                ),
                "`{bad}` must fail typed, was {err:?}"
            );
        }
        // Truncated blocks hit EOF, not panics.
        let err = response_from_text("ok list 2\ninstance a 1 1 1\n").unwrap_err();
        assert!(matches!(err, ProtoError::UnexpectedEof { .. }), "{err}");
        let err = response_from_text("ok solve a 1.5 3 2\nassign 0 1\n").unwrap_err();
        assert!(matches!(err, ProtoError::UnexpectedEof { .. }), "{err}");
    }

    #[test]
    fn unencodable_values_are_rejected_at_write_time() {
        assert!(matches!(
            request_to_text(&Request::Unload {
                name: "two words".into()
            }),
            Err(ProtoError::UnencodableText { .. })
        ));
        assert!(matches!(
            request_to_text(&Request::Load {
                name: "a".into(),
                payload: vec!["line\nbreak".into()],
            }),
            Err(ProtoError::UnencodableText { .. })
        ));
        assert!(matches!(
            response_to_text(&Response::Error {
                code: ErrorCode::BadRequest,
                detail: "two\nlines".into()
            }),
            Err(ProtoError::UnencodableText { .. })
        ));
    }
}
