//! `mf-proto` — the line-delimited text protocol of the serve loop
//! (versions 1, 2 and 3).
//!
//! The protocol is styled after `mf-report v1` (`mf_experiments::persist`):
//! plain text, one record per line, multi-line payloads carried by an
//! explicit line count (requests) or closed by an `end` marker (responses),
//! and every `f64` written with Rust's shortest-round-trip formatting so
//! values survive a write→parse round trip **bit-for-bit**. A session opens
//! with the server greeting line `mf-proto v1` and speaks **v1** until the
//! client upgrades it.
//!
//! # Version negotiation
//!
//! Upgrades are negotiated with a `hello` handshake: the client sends
//! `hello mf-proto vN` (any requested version above the highest supported
//! is negotiated down to it) and the server answers `ok hello mf-proto vM`
//! with the version the session now speaks. A client that never says
//! `hello` stays on v1 and sees byte-identical v1 behavior. v2 adds:
//!
//! * `batch N` — a request envelope carrying `N` instance commands that are
//!   answered in one round trip with an `ok batch N … end` block;
//! * `status-export` — the full statistics report as one JSON document;
//! * extra `stats` counters (evaluator builds and the keyed evaluate cache).
//!
//! v3 adds the **anytime solve**: `solve <name> anytime [budget B] [seed S]`
//! is answered by a streaming multi-part block whose `gap` lines report the
//! monotone incumbent/bound race (first line already feasible, last line
//! `proven 1` when the gap closed):
//!
//! ```text
//! C: solve line6 anytime budget 50000
//! S: ok solve-anytime 3 437.51948051948053 3 6
//! S: gap seed 0 445.2 381.26618826373489 0
//! S: gap lns 12500 440.1 381.26618826373489 0
//! S: gap bnb 14061 437.51948051948053 437.51948051948053 1
//! S: assign 0 1
//! S: …
//! S: end
//! ```
//!
//! ```text
//! C: load line6 18
//! C: # microfactory instance
//! C: tasks 6
//! C: …                         (16 more payload lines)
//! S: ok load line6 6 3 2
//! C: solve line6 heuristic SD-H2 seed 7
//! S: ok solve SD-H2 437.51948051948053 3 6
//! S: assign 0 1
//! S: …
//! S: end
//! C: shutdown
//! S: ok shutdown
//! ```
//!
//! Serialization is **canonical**: for any request or response value,
//! `parse(write(x)) == x` and `write(parse(write(x))) == write(x)` byte for
//! byte — the round-trip property `proto_roundtrip.rs` pins for every
//! variant. Malformed input produces a typed [`ProtoError`], never a panic.

use std::fmt::Write as _;
use std::io::BufRead;

/// The protocol magic, sent by the server as its greeting line. The greeting
/// always names v1 — the version every session starts in — so v1 clients
/// and transcripts stay byte-identical; v2 is negotiated by `hello`.
pub const GREETING: &str = "mf-proto v1";

/// The protocol family name used by the `hello` handshake.
pub const PROTO_NAME: &str = "mf-proto";

/// The highest protocol version this implementation speaks.
pub const CURRENT_VERSION: u32 = 3;

/// A negotiated protocol version of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ProtoVersion {
    /// `mf-proto v1` — the PR-4 request/response protocol; every session
    /// starts here.
    #[default]
    V1,
    /// `mf-proto v2` — adds the `batch` envelope, `status-export` and the
    /// evaluate-cache `stats` counters.
    V2,
    /// `mf-proto v3` — adds the anytime solve (`solve <name> anytime …`)
    /// answered by a streaming `ok solve-anytime` block of monotone
    /// incumbent/bound `gap` lines.
    V3,
}

impl ProtoVersion {
    /// The version number on the wire (`1`, `2` or `3`).
    pub fn number(self) -> u32 {
        match self {
            ProtoVersion::V1 => 1,
            ProtoVersion::V2 => 2,
            ProtoVersion::V3 => 3,
        }
    }

    /// The version a server offers to a client requesting `requested`:
    /// exactly what was asked for when it is supported, otherwise the
    /// highest supported version below it. `None` for v0 (never valid).
    pub fn negotiate(requested: u32) -> Option<ProtoVersion> {
        match requested {
            0 => None,
            1 => Some(ProtoVersion::V1),
            2 => Some(ProtoVersion::V2),
            _ => Some(ProtoVersion::V3),
        }
    }

    fn from_number(number: u32) -> Option<ProtoVersion> {
        match number {
            1 => Some(ProtoVersion::V1),
            2 => Some(ProtoVersion::V2),
            3 => Some(ProtoVersion::V3),
            _ => None,
        }
    }
}

impl std::fmt::Display for ProtoVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{PROTO_NAME} v{}", self.number())
    }
}

/// Errors raised while parsing or writing protocol lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The input ended in the middle of a request or response.
    UnexpectedEof {
        /// What was being parsed when the input ran out.
        context: &'static str,
    },
    /// A line did not match the grammar.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// A name or text field contains characters the wire format cannot carry.
    UnencodableText {
        /// The offending text.
        text: String,
    },
    /// An I/O error from the underlying reader.
    Io(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            ProtoError::Malformed { detail } => write!(f, "malformed protocol line: {detail}"),
            ProtoError::UnencodableText { text } => {
                write!(f, "text cannot be encoded on one protocol line: {text:?}")
            }
            ProtoError::Io(detail) => write!(f, "protocol I/O error: {detail}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e.to_string())
    }
}

/// Result alias for protocol operations.
pub type ProtoResult<T> = std::result::Result<T, ProtoError>;

fn malformed(detail: impl Into<String>) -> ProtoError {
    ProtoError::Malformed {
        detail: detail.into(),
    }
}

/// `true` for names the wire format can carry as a single token: non-empty
/// ASCII alphanumerics plus `.`, `_`, `-` and `#` (portfolio cell labels such
/// as `H6-H4w#1` travel through the same token slot as instance names).
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-' || b == b'#')
}

fn check_name(name: &str) -> ProtoResult<&str> {
    if valid_name(name) {
        Ok(name)
    } else {
        Err(ProtoError::UnencodableText {
            text: name.to_string(),
        })
    }
}

/// A payload line must not itself be a line separator.
fn check_payload_line(line: &str) -> ProtoResult<&str> {
    if line.contains('\n') || line.contains('\r') {
        Err(ProtoError::UnencodableText {
            text: line.to_string(),
        })
    } else {
        Ok(line)
    }
}

/// How a `solve` request wants the mapping computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveMethod {
    /// One registry heuristic (`"H4w"`, `"SD-H2"`, …; canonical casing).
    Heuristic(String),
    /// The parallel search portfolio on the server's shared pool.
    Portfolio,
    /// The anytime incumbent/bound race (v3): seed heuristic, LNS slice and
    /// LP-warm-started branch-and-bound under one step budget, answered by
    /// a streaming `ok solve-anytime` block.
    Anytime {
        /// Step budget (heuristic evaluations + branch-and-bound nodes);
        /// `None` uses the server's default budget.
        budget: Option<u64>,
    },
}

/// A what-if probe against the session's resident evaluator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Move one task to a machine.
    Move {
        /// Task index.
        task: usize,
        /// Target machine index.
        machine: usize,
    },
    /// Exchange the machines of two tasks.
    Swap {
        /// First task index.
        a: usize,
        /// Second task index.
        b: usize,
    },
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Version handshake (`hello mf-proto vN`): asks the server to speak
    /// protocol version `requested`; the server answers with the negotiated
    /// version and the session switches to it.
    Hello {
        /// The version the client asks for (negotiated down if unknown).
        requested: u32,
    },
    /// A v2 envelope of `N` instance commands, answered in one round trip.
    /// Only instance-named commands (`load`, `unload`, `evaluate`, `whatif`,
    /// `solve`) may ride a batch; envelopes never nest.
    Batch(Vec<Request>),
    /// The full statistics report as one machine-readable JSON document
    /// (v2; the `stats --json` of the protocol).
    StatusExport,
    /// Load (or replace) a named instance from inline `mf_core::textio`
    /// instance text.
    Load {
        /// Store name of the instance.
        name: String,
        /// Instance text, one payload line per entry.
        payload: Vec<String>,
    },
    /// Drop a named instance from the store.
    Unload {
        /// Store name.
        name: String,
    },
    /// List the resident instances.
    List,
    /// Evaluate a mapping (inline `mf_core::textio` mapping text) against a
    /// resident instance; refreshes the session's resident evaluator.
    Evaluate {
        /// Store name of the instance.
        name: String,
        /// Mapping text, one payload line per entry.
        payload: Vec<String>,
    },
    /// What-if probe against the resident evaluator state the session's last
    /// `evaluate`/`solve` on this instance left behind.
    WhatIf {
        /// Store name of the instance.
        name: String,
        /// The probe.
        probe: Probe,
    },
    /// Compute a mapping for a resident instance.
    Solve {
        /// Store name of the instance.
        name: String,
        /// Solver choice.
        method: SolveMethod,
        /// Per-request seed; `None` uses the defaults of the equivalent
        /// one-shot CLI run (so answers are bit-identical to it).
        seed: Option<u64>,
    },
    /// Server statistics counters.
    Stats,
    /// End the session; a TCP server stops accepting new connections.
    Shutdown,
}

impl Request {
    /// The wire keyword of the request's head line.
    pub fn keyword(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Batch(_) => "batch",
            Request::StatusExport => "status-export",
            Request::Load { .. } => "load",
            Request::Unload { .. } => "unload",
            Request::List => "list",
            Request::Evaluate { .. } => "evaluate",
            Request::WhatIf { .. } => "whatif",
            Request::Solve { .. } => "solve",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }

    /// The instance name this request targets, if it is an instance command.
    /// Exactly the commands with a `Some` name may ride a [`Request::Batch`]
    /// envelope, and they are what a router shards across workers.
    pub fn instance_name(&self) -> Option<&str> {
        match self {
            Request::Load { name, .. }
            | Request::Unload { name }
            | Request::Evaluate { name, .. }
            | Request::WhatIf { name, .. }
            | Request::Solve { name, .. } => Some(name),
            Request::Hello { .. }
            | Request::Batch(_)
            | Request::StatusExport
            | Request::List
            | Request::Stats
            | Request::Shutdown => None,
        }
    }
}

/// One incumbent/bound report in a `solve-anytime` response block. Within
/// a block, `steps` never decreases, `period` never increases, `bound`
/// never decreases, and only the last report may be `proven`.
#[derive(Debug, Clone, PartialEq)]
pub struct GapReport {
    /// Single-token phase label (`seed`, `lns`, `bnb`).
    pub phase: String,
    /// Cumulative steps consumed when the report fired.
    pub steps: u64,
    /// Incumbent period (ms, lossless).
    pub period: f64,
    /// Certified lower bound (ms, lossless).
    pub bound: f64,
    /// Whether the incumbent is proven optimal (gap zero).
    pub proven: bool,
}

/// One named instance in a `list` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceInfo {
    /// Store name.
    pub name: String,
    /// Task count.
    pub tasks: usize,
    /// Machine count.
    pub machines: usize,
    /// Task-type count.
    pub types: usize,
}

/// Error classes a request can fail with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line (or its arguments) did not make sense.
    BadRequest,
    /// No resident instance under that name.
    UnknownInstance,
    /// The inline instance/mapping payload was rejected by `textio` or does
    /// not fit the instance.
    InvalidPayload,
    /// The solver produced no mapping (e.g. more task types than machines).
    Infeasible,
    /// `whatif` without resident evaluator state for the instance in this
    /// session.
    NoResidentState,
    /// A durable server applied the request in memory but could not append
    /// it to its `mf-journal` — the change is live but not yet crash-safe.
    JournalFailed,
}

impl ErrorCode {
    /// The wire token of the code.
    pub fn token(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownInstance => "unknown-instance",
            ErrorCode::InvalidPayload => "invalid-payload",
            ErrorCode::Infeasible => "infeasible",
            ErrorCode::NoResidentState => "no-resident-state",
            ErrorCode::JournalFailed => "journal-failed",
        }
    }

    fn from_token(token: &str) -> Option<Self> {
        Some(match token {
            "bad-request" => ErrorCode::BadRequest,
            "unknown-instance" => ErrorCode::UnknownInstance,
            "invalid-payload" => ErrorCode::InvalidPayload,
            "infeasible" => ErrorCode::Infeasible,
            "no-resident-state" => ErrorCode::NoResidentState,
            "journal-failed" => ErrorCode::JournalFailed,
            _ => return None,
        })
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake answer: the version the session now speaks.
    Hello {
        /// The negotiated version.
        version: ProtoVersion,
    },
    /// The answers of a [`Request::Batch`], in request order.
    Batch(Vec<Response>),
    /// The statistics report as JSON document lines (v2).
    StatusExport(Vec<String>),
    /// Instance loaded (or replaced).
    Loaded {
        /// Store name.
        name: String,
        /// Task count.
        tasks: usize,
        /// Machine count.
        machines: usize,
        /// Task-type count.
        types: usize,
    },
    /// Instance dropped.
    Unloaded {
        /// Store name.
        name: String,
    },
    /// The resident instances, sorted by name.
    List(Vec<InstanceInfo>),
    /// Mapping evaluated. Floats are lossless (`{}` formatting).
    Evaluated {
        /// System period (ms), bit-identical to the one-shot evaluation.
        period: f64,
        /// Critical machine index (lowest index on exact ties).
        critical: usize,
        /// Per-machine loads (ms), indexed by machine.
        loads: Vec<f64>,
    },
    /// What-if probe answered from resident evaluator state.
    WhatIf {
        /// Candidate system period (ms).
        period: f64,
        /// Candidate critical machine index.
        critical: usize,
    },
    /// Mapping computed.
    Solved {
        /// Winning method label (registry name, or portfolio cell label).
        label: String,
        /// Achieved system period (ms), bit-identical to the one-shot run.
        period: f64,
        /// Machine count of the mapping.
        machines: usize,
        /// Machine index per task, in task order.
        assignment: Vec<usize>,
    },
    /// Anytime mapping computed (v3): the streamed incumbent/bound reports
    /// followed by the final assignment. The first report already carries a
    /// feasible incumbent; the reports are monotone (see [`GapReport`]).
    SolvedAnytime {
        /// Every incumbent/bound report, in emission order.
        reports: Vec<GapReport>,
        /// Achieved system period (ms) — the last report's incumbent.
        period: f64,
        /// Machine count of the mapping.
        machines: usize,
        /// Machine index per task, in task order.
        assignment: Vec<usize>,
    },
    /// Statistics counters, in the server's fixed presentation order.
    Stats(Vec<(String, u64)>),
    /// Session closed by request.
    Shutdown,
    /// The request failed.
    Error {
        /// Error class.
        code: ErrorCode,
        /// Human-readable detail (single line).
        detail: String,
    },
}

impl Response {
    /// Convenience constructor for error responses.
    pub fn error(code: ErrorCode, detail: impl Into<String>) -> Self {
        Response::Error {
            code,
            detail: detail.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Serializes a request in canonical wire form (trailing newline included).
pub fn request_to_text(request: &Request) -> ProtoResult<String> {
    let mut out = String::new();
    match request {
        Request::Hello { requested } => {
            let _ = writeln!(out, "hello {PROTO_NAME} v{requested}");
        }
        Request::Batch(items) => {
            let _ = writeln!(out, "batch {}", items.len());
            for item in items {
                if matches!(item, Request::Batch(_)) {
                    return Err(ProtoError::UnencodableText {
                        text: "batch envelopes cannot nest".to_string(),
                    });
                }
                out.push_str(&request_to_text(item)?);
            }
        }
        Request::StatusExport => {
            let _ = writeln!(out, "status-export");
        }
        Request::Load { name, payload } => {
            let _ = writeln!(out, "load {} {}", check_name(name)?, payload.len());
            for line in payload {
                let _ = writeln!(out, "{}", check_payload_line(line)?);
            }
        }
        Request::Unload { name } => {
            let _ = writeln!(out, "unload {}", check_name(name)?);
        }
        Request::List => {
            let _ = writeln!(out, "list");
        }
        Request::Evaluate { name, payload } => {
            let _ = writeln!(out, "evaluate {} {}", check_name(name)?, payload.len());
            for line in payload {
                let _ = writeln!(out, "{}", check_payload_line(line)?);
            }
        }
        Request::WhatIf { name, probe } => match probe {
            Probe::Move { task, machine } => {
                let _ = writeln!(out, "whatif {} move {task} {machine}", check_name(name)?);
            }
            Probe::Swap { a, b } => {
                let _ = writeln!(out, "whatif {} swap {a} {b}", check_name(name)?);
            }
        },
        Request::Solve { name, method, seed } => {
            let _ = write!(out, "solve {}", check_name(name)?);
            match method {
                SolveMethod::Heuristic(heuristic) => {
                    let _ = write!(out, " heuristic {}", check_name(heuristic)?);
                }
                SolveMethod::Portfolio => {
                    let _ = write!(out, " portfolio");
                }
                SolveMethod::Anytime { budget } => {
                    let _ = write!(out, " anytime");
                    if let Some(budget) = budget {
                        let _ = write!(out, " budget {budget}");
                    }
                }
            }
            if let Some(seed) = seed {
                let _ = write!(out, " seed {seed}");
            }
            out.push('\n');
        }
        Request::Stats => {
            let _ = writeln!(out, "stats");
        }
        Request::Shutdown => {
            let _ = writeln!(out, "shutdown");
        }
    }
    Ok(out)
}

/// Serializes a response in canonical wire form (trailing newline included).
pub fn response_to_text(response: &Response) -> ProtoResult<String> {
    let mut out = String::new();
    match response {
        Response::Hello { version } => {
            let _ = writeln!(out, "ok hello {version}");
        }
        Response::Batch(items) => {
            let _ = writeln!(out, "ok batch {}", items.len());
            for item in items {
                if matches!(item, Response::Batch(_)) {
                    return Err(ProtoError::UnencodableText {
                        text: "batch envelopes cannot nest".to_string(),
                    });
                }
                out.push_str(&response_to_text(item)?);
            }
            let _ = writeln!(out, "end");
        }
        Response::StatusExport(lines) => {
            let _ = writeln!(out, "ok status-export {}", lines.len());
            for line in lines {
                let _ = writeln!(out, "{}", check_payload_line(line)?);
            }
            let _ = writeln!(out, "end");
        }
        Response::Loaded {
            name,
            tasks,
            machines,
            types,
        } => {
            let _ = writeln!(
                out,
                "ok load {} {tasks} {machines} {types}",
                check_name(name)?
            );
        }
        Response::Unloaded { name } => {
            let _ = writeln!(out, "ok unload {}", check_name(name)?);
        }
        Response::List(entries) => {
            let _ = writeln!(out, "ok list {}", entries.len());
            for entry in entries {
                let _ = writeln!(
                    out,
                    "instance {} {} {} {}",
                    check_name(&entry.name)?,
                    entry.tasks,
                    entry.machines,
                    entry.types
                );
            }
            let _ = writeln!(out, "end");
        }
        Response::Evaluated {
            period,
            critical,
            loads,
        } => {
            let _ = writeln!(out, "ok evaluate {period} {critical}");
            for (u, load) in loads.iter().enumerate() {
                let _ = writeln!(out, "load {u} {load}");
            }
            let _ = writeln!(out, "end");
        }
        Response::WhatIf { period, critical } => {
            let _ = writeln!(out, "ok whatif {period} {critical}");
        }
        Response::Solved {
            label,
            period,
            machines,
            assignment,
        } => {
            let _ = writeln!(
                out,
                "ok solve {} {period} {machines} {}",
                check_name(label)?,
                assignment.len()
            );
            for (task, machine) in assignment.iter().enumerate() {
                let _ = writeln!(out, "assign {task} {machine}");
            }
            let _ = writeln!(out, "end");
        }
        Response::SolvedAnytime {
            reports,
            period,
            machines,
            assignment,
        } => {
            let _ = writeln!(
                out,
                "ok solve-anytime {} {period} {machines} {}",
                reports.len(),
                assignment.len()
            );
            for report in reports {
                let _ = writeln!(
                    out,
                    "gap {} {} {} {} {}",
                    check_name(&report.phase)?,
                    report.steps,
                    report.period,
                    report.bound,
                    u8::from(report.proven)
                );
            }
            for (task, machine) in assignment.iter().enumerate() {
                let _ = writeln!(out, "assign {task} {machine}");
            }
            let _ = writeln!(out, "end");
        }
        Response::Stats(entries) => {
            let _ = writeln!(out, "ok stats {}", entries.len());
            for (key, value) in entries {
                let _ = writeln!(out, "stat {} {value}", check_name(key)?);
            }
            let _ = writeln!(out, "end");
        }
        Response::Shutdown => {
            let _ = writeln!(out, "ok shutdown");
        }
        Response::Error { code, detail } => {
            if detail.contains('\n') || detail.contains('\r') {
                return Err(ProtoError::UnencodableText {
                    text: detail.clone(),
                });
            }
            let _ = writeln!(out, "err {} {detail}", code.token());
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Upper bound on any `Vec::with_capacity` driven by a wire-supplied count.
/// Real counts above this still parse — they just grow by pushing.
const WIRE_CAPACITY_CAP: usize = 1024;

/// A line source over any [`BufRead`], tracking EOF and stream desync.
#[derive(Debug)]
pub struct ProtoReader<R> {
    reader: R,
    desynced: bool,
}

impl<R: BufRead> ProtoReader<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R) -> Self {
        ProtoReader {
            reader,
            desynced: false,
        }
    }

    /// `true` once a parse failure left the stream offset untrustworthy —
    /// a `load`/`evaluate` head that failed before its payload count was
    /// known, so the following lines may be payload, not requests. A serve
    /// loop should answer the error and close the session rather than
    /// execute payload lines as commands.
    pub fn is_desynced(&self) -> bool {
        self.desynced
    }

    /// The next line without its terminator; `None` at EOF.
    fn next_line(&mut self) -> ProtoResult<Option<String>> {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// The next non-empty line; `None` at EOF.
    fn next_content_line(&mut self) -> ProtoResult<Option<String>> {
        loop {
            match self.next_line()? {
                None => return Ok(None),
                Some(line) if line.trim().is_empty() => continue,
                Some(line) => return Ok(Some(line)),
            }
        }
    }

    /// Reads exactly `count` payload lines (payload lines may be blank-ish
    /// comment lines of the embedded text format, so no blank skipping).
    fn payload(&mut self, count: usize, context: &'static str) -> ProtoResult<Vec<String>> {
        // Counts come off the wire: cap the pre-allocation so a hostile
        // header cannot request petabytes before a single line is read
        // (growth beyond the cap is amortized push).
        let mut lines = Vec::with_capacity(count.min(WIRE_CAPACITY_CAP));
        for _ in 0..count {
            match self.next_line()? {
                Some(line) => lines.push(line),
                None => return Err(ProtoError::UnexpectedEof { context }),
            }
        }
        Ok(lines)
    }

    /// Reads the server greeting line (`None` at EOF). The caller compares
    /// it against [`GREETING`].
    pub fn read_greeting(&mut self) -> ProtoResult<Option<String>> {
        self.next_content_line()
    }

    /// Reads one request; `None` at a clean EOF (before any request line).
    pub fn read_request(&mut self) -> ProtoResult<Option<Request>> {
        let Some(line) = self.next_content_line()? else {
            return Ok(None);
        };
        self.parse_request_head(&line).map(Some)
    }

    fn parse_request_head(&mut self, line: &str) -> ProtoResult<Request> {
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("content lines are non-empty");
        let request = match keyword {
            "hello" => {
                match tokens.next() {
                    Some(PROTO_NAME) => {}
                    other => {
                        return Err(malformed(format!(
                            "expected `hello {PROTO_NAME} vN`, found `hello {}`",
                            other.unwrap_or("")
                        )))
                    }
                }
                let requested = parse_version(tokens.next())?;
                reject_extra(tokens.next(), line)?;
                Request::Hello { requested }
            }
            "batch" => {
                // Until all the enveloped requests are parsed, a failure
                // leaves an unknown number of request/payload lines
                // unconsumed — the stream is desynced throughout.
                self.desynced = true;
                let count = parse_count(tokens.next(), "batch")?;
                reject_extra(tokens.next(), line)?;
                let mut items = Vec::with_capacity(count.min(WIRE_CAPACITY_CAP));
                for _ in 0..count {
                    let Some(item_line) = self.next_content_line()? else {
                        return Err(ProtoError::UnexpectedEof {
                            context: "batch items",
                        });
                    };
                    let item = self.parse_request_head(&item_line)?;
                    // A nested `load`/`evaluate` clears the flag after its
                    // payload — re-arm it while the envelope stays open.
                    self.desynced = true;
                    if matches!(item, Request::Batch(_)) {
                        return Err(malformed("batch envelopes cannot nest"));
                    }
                    items.push(item);
                }
                self.desynced = false;
                Request::Batch(items)
            }
            "status-export" => {
                reject_extra(tokens.next(), line)?;
                Request::StatusExport
            }
            "load" | "evaluate" => {
                // Until the payload count is parsed, any failure leaves the
                // payload lines unconsumed — mark the stream desynced so the
                // serve loop doesn't execute them as commands.
                self.desynced = true;
                let name = parse_name(tokens.next(), keyword)?;
                let count = parse_count(tokens.next(), keyword)?;
                reject_extra(tokens.next(), line)?;
                self.desynced = false;
                let payload = self.payload(
                    count,
                    if keyword == "load" {
                        "load payload"
                    } else {
                        "evaluate payload"
                    },
                )?;
                for candidate in &payload {
                    check_payload_line(candidate)?;
                }
                if keyword == "load" {
                    Request::Load { name, payload }
                } else {
                    Request::Evaluate { name, payload }
                }
            }
            "unload" => {
                let name = parse_name(tokens.next(), keyword)?;
                reject_extra(tokens.next(), line)?;
                Request::Unload { name }
            }
            "list" => {
                reject_extra(tokens.next(), line)?;
                Request::List
            }
            "whatif" => {
                let name = parse_name(tokens.next(), keyword)?;
                let probe = match tokens.next() {
                    Some("move") => Probe::Move {
                        task: parse_index(tokens.next(), "whatif task")?,
                        machine: parse_index(tokens.next(), "whatif machine")?,
                    },
                    Some("swap") => Probe::Swap {
                        a: parse_index(tokens.next(), "whatif first task")?,
                        b: parse_index(tokens.next(), "whatif second task")?,
                    },
                    other => {
                        return Err(malformed(format!(
                            "expected `move` or `swap`, found `{}`",
                            other.unwrap_or("")
                        )))
                    }
                };
                reject_extra(tokens.next(), line)?;
                Request::WhatIf { name, probe }
            }
            "solve" => {
                let name = parse_name(tokens.next(), keyword)?;
                let method = match tokens.next() {
                    Some("heuristic") => {
                        SolveMethod::Heuristic(parse_name(tokens.next(), "heuristic")?)
                    }
                    Some("portfolio") => SolveMethod::Portfolio,
                    Some("anytime") => SolveMethod::Anytime { budget: None },
                    other => {
                        return Err(malformed(format!(
                            "expected `heuristic <name>`, `portfolio` or `anytime`, found `{}`",
                            other.unwrap_or("")
                        )))
                    }
                };
                let mut next = tokens.next();
                let method = match (method, next) {
                    (SolveMethod::Anytime { .. }, Some("budget")) => {
                        let budget = parse_u64(tokens.next(), "budget")?;
                        next = tokens.next();
                        SolveMethod::Anytime {
                            budget: Some(budget),
                        }
                    }
                    (method, _) => method,
                };
                let seed = match next {
                    None => None,
                    Some("seed") => Some(parse_u64(tokens.next(), "seed")?),
                    Some(other) => {
                        return Err(malformed(format!("unexpected token `{other}`")));
                    }
                };
                reject_extra(tokens.next(), line)?;
                Request::Solve { name, method, seed }
            }
            "stats" => {
                reject_extra(tokens.next(), line)?;
                Request::Stats
            }
            "shutdown" => {
                reject_extra(tokens.next(), line)?;
                Request::Shutdown
            }
            other => {
                return Err(malformed(format!(
                    "unknown request `{other}` (expected hello, load, unload, list, evaluate, \
                     whatif, solve, batch, stats, status-export or shutdown)"
                )))
            }
        };
        Ok(request)
    }

    /// Reads one response; `None` at a clean EOF.
    pub fn read_response(&mut self) -> ProtoResult<Option<Response>> {
        let Some(line) = self.next_content_line()? else {
            return Ok(None);
        };
        self.parse_response_head(&line).map(Some)
    }

    fn parse_response_head(&mut self, line: &str) -> ProtoResult<Response> {
        let mut tokens = line.split_whitespace();
        match tokens.next().expect("content lines are non-empty") {
            "ok" => {}
            "err" => {
                let code_token = tokens
                    .next()
                    .ok_or_else(|| malformed("`err` without a code"))?;
                let code = ErrorCode::from_token(code_token)
                    .ok_or_else(|| malformed(format!("unknown error code `{code_token}`")))?;
                let rest = line
                    .splitn(3, ' ')
                    .nth(2)
                    .ok_or_else(|| malformed("`err` without a detail message"))?;
                return Ok(Response::Error {
                    code,
                    detail: rest.to_string(),
                });
            }
            other => {
                return Err(malformed(format!(
                    "expected `ok …` or `err …`, found `{other}`"
                )))
            }
        }
        let verb = tokens
            .next()
            .ok_or_else(|| malformed("`ok` without a verb"))?;
        let response = match verb {
            "hello" => {
                match tokens.next() {
                    Some(PROTO_NAME) => {}
                    other => {
                        return Err(malformed(format!(
                            "expected `ok hello {PROTO_NAME} vN`, found `ok hello {}`",
                            other.unwrap_or("")
                        )))
                    }
                }
                let number = parse_version(tokens.next())?;
                let version = ProtoVersion::from_number(number)
                    .ok_or_else(|| malformed(format!("unsupported hello version v{number}")))?;
                Response::Hello { version }
            }
            "batch" => {
                let count = parse_count(tokens.next(), "batch count")?;
                reject_extra(tokens.next(), line)?;
                let mut items = Vec::with_capacity(count.min(WIRE_CAPACITY_CAP));
                for _ in 0..count {
                    let item = self.read_response()?.ok_or(ProtoError::UnexpectedEof {
                        context: "batch answers",
                    })?;
                    if matches!(item, Response::Batch(_)) {
                        return Err(malformed("batch envelopes cannot nest"));
                    }
                    items.push(item);
                }
                self.expect_end("batch")?;
                return Ok(Response::Batch(items));
            }
            "status-export" => {
                let count = parse_count(tokens.next(), "status-export line count")?;
                reject_extra(tokens.next(), line)?;
                let lines = self.payload(count, "status-export document")?;
                for candidate in &lines {
                    check_payload_line(candidate)?;
                }
                self.expect_end("status-export")?;
                return Ok(Response::StatusExport(lines));
            }
            "load" => Response::Loaded {
                name: parse_name(tokens.next(), "loaded name")?,
                tasks: parse_count(tokens.next(), "task count")?,
                machines: parse_count(tokens.next(), "machine count")?,
                types: parse_count(tokens.next(), "type count")?,
            },
            "unload" => Response::Unloaded {
                name: parse_name(tokens.next(), "unloaded name")?,
            },
            "list" => {
                let count = parse_count(tokens.next(), "list count")?;
                reject_extra(tokens.next(), line)?;
                let mut entries = Vec::with_capacity(count.min(WIRE_CAPACITY_CAP));
                for _ in 0..count {
                    let entry = self.next_content_line()?.ok_or(ProtoError::UnexpectedEof {
                        context: "list entries",
                    })?;
                    let mut t = entry.split_whitespace();
                    match t.next() {
                        Some("instance") => {}
                        _ => return Err(malformed(format!("expected `instance …`: `{entry}`"))),
                    }
                    entries.push(InstanceInfo {
                        name: parse_name(t.next(), "instance name")?,
                        tasks: parse_count(t.next(), "task count")?,
                        machines: parse_count(t.next(), "machine count")?,
                        types: parse_count(t.next(), "type count")?,
                    });
                    reject_extra(t.next(), &entry)?;
                }
                self.expect_end("list")?;
                return Ok(Response::List(entries));
            }
            "evaluate" => {
                let period = parse_f64(tokens.next(), "period")?;
                let critical = parse_index(tokens.next(), "critical machine")?;
                reject_extra(tokens.next(), line)?;
                let mut loads = Vec::new();
                loop {
                    let entry = self.next_content_line()?.ok_or(ProtoError::UnexpectedEof {
                        context: "evaluate loads",
                    })?;
                    if entry == "end" {
                        break;
                    }
                    let mut t = entry.split_whitespace();
                    match t.next() {
                        Some("load") => {}
                        _ => return Err(malformed(format!("expected `load …`: `{entry}`"))),
                    }
                    let index = parse_index(t.next(), "machine index")?;
                    if index != loads.len() {
                        return Err(malformed(format!(
                            "load lines out of order: expected machine {}, found {index}",
                            loads.len()
                        )));
                    }
                    loads.push(parse_f64(t.next(), "machine load")?);
                    reject_extra(t.next(), &entry)?;
                }
                return Ok(Response::Evaluated {
                    period,
                    critical,
                    loads,
                });
            }
            "whatif" => Response::WhatIf {
                period: parse_f64(tokens.next(), "period")?,
                critical: parse_index(tokens.next(), "critical machine")?,
            },
            "solve" => {
                let label = parse_name(tokens.next(), "solve label")?;
                let period = parse_f64(tokens.next(), "period")?;
                let machines = parse_count(tokens.next(), "machine count")?;
                let tasks = parse_count(tokens.next(), "task count")?;
                reject_extra(tokens.next(), line)?;
                let mut assignment = Vec::with_capacity(tasks.min(WIRE_CAPACITY_CAP));
                for _ in 0..tasks {
                    let entry = self.next_content_line()?.ok_or(ProtoError::UnexpectedEof {
                        context: "solve assignment",
                    })?;
                    let mut t = entry.split_whitespace();
                    match t.next() {
                        Some("assign") => {}
                        _ => return Err(malformed(format!("expected `assign …`: `{entry}`"))),
                    }
                    let task = parse_index(t.next(), "task index")?;
                    if task != assignment.len() {
                        return Err(malformed(format!(
                            "assign lines out of order: expected task {}, found {task}",
                            assignment.len()
                        )));
                    }
                    assignment.push(parse_index(t.next(), "machine index")?);
                    reject_extra(t.next(), &entry)?;
                }
                self.expect_end("solve")?;
                return Ok(Response::Solved {
                    label,
                    period,
                    machines,
                    assignment,
                });
            }
            "solve-anytime" => {
                let report_count = parse_count(tokens.next(), "report count")?;
                let period = parse_f64(tokens.next(), "period")?;
                let machines = parse_count(tokens.next(), "machine count")?;
                let tasks = parse_count(tokens.next(), "task count")?;
                reject_extra(tokens.next(), line)?;
                let mut reports = Vec::with_capacity(report_count.min(WIRE_CAPACITY_CAP));
                for _ in 0..report_count {
                    let entry = self.next_content_line()?.ok_or(ProtoError::UnexpectedEof {
                        context: "solve-anytime gap reports",
                    })?;
                    let mut t = entry.split_whitespace();
                    match t.next() {
                        Some("gap") => {}
                        _ => return Err(malformed(format!("expected `gap …`: `{entry}`"))),
                    }
                    let phase = parse_name(t.next(), "gap phase")?;
                    let steps = parse_u64(t.next(), "gap steps")?;
                    let period = parse_f64(t.next(), "gap period")?;
                    let bound = parse_f64(t.next(), "gap bound")?;
                    let proven = match t.next() {
                        Some("0") => false,
                        Some("1") => true,
                        other => {
                            return Err(malformed(format!(
                                "expected proven flag 0 or 1, found `{}`",
                                other.unwrap_or("")
                            )))
                        }
                    };
                    reject_extra(t.next(), &entry)?;
                    reports.push(GapReport {
                        phase,
                        steps,
                        period,
                        bound,
                        proven,
                    });
                }
                let mut assignment = Vec::with_capacity(tasks.min(WIRE_CAPACITY_CAP));
                for _ in 0..tasks {
                    let entry = self.next_content_line()?.ok_or(ProtoError::UnexpectedEof {
                        context: "solve-anytime assignment",
                    })?;
                    let mut t = entry.split_whitespace();
                    match t.next() {
                        Some("assign") => {}
                        _ => return Err(malformed(format!("expected `assign …`: `{entry}`"))),
                    }
                    let task = parse_index(t.next(), "task index")?;
                    if task != assignment.len() {
                        return Err(malformed(format!(
                            "assign lines out of order: expected task {}, found {task}",
                            assignment.len()
                        )));
                    }
                    assignment.push(parse_index(t.next(), "machine index")?);
                    reject_extra(t.next(), &entry)?;
                }
                self.expect_end("solve-anytime")?;
                return Ok(Response::SolvedAnytime {
                    reports,
                    period,
                    machines,
                    assignment,
                });
            }
            "stats" => {
                let count = parse_count(tokens.next(), "stats count")?;
                reject_extra(tokens.next(), line)?;
                let mut entries = Vec::with_capacity(count.min(WIRE_CAPACITY_CAP));
                for _ in 0..count {
                    let entry = self.next_content_line()?.ok_or(ProtoError::UnexpectedEof {
                        context: "stats entries",
                    })?;
                    let mut t = entry.split_whitespace();
                    match t.next() {
                        Some("stat") => {}
                        _ => return Err(malformed(format!("expected `stat …`: `{entry}`"))),
                    }
                    entries.push((
                        parse_name(t.next(), "stat key")?,
                        parse_u64(t.next(), "stat value")?,
                    ));
                    reject_extra(t.next(), &entry)?;
                }
                self.expect_end("stats")?;
                return Ok(Response::Stats(entries));
            }
            "shutdown" => Response::Shutdown,
            other => return Err(malformed(format!("unknown response verb `{other}`"))),
        };
        // Single-line responses reach here (block responses returned above);
        // the live iterator holds exactly the unconsumed tail of the line.
        reject_extra(tokens.next(), line)?;
        Ok(response)
    }

    fn expect_end(&mut self, context: &'static str) -> ProtoResult<()> {
        match self.next_content_line()? {
            Some(line) if line == "end" => Ok(()),
            Some(line) => Err(malformed(format!("expected `end`, found `{line}`"))),
            None => Err(ProtoError::UnexpectedEof { context }),
        }
    }
}

fn parse_name(token: Option<&str>, what: &str) -> ProtoResult<String> {
    let token = token.ok_or_else(|| malformed(format!("missing {what} name")))?;
    if valid_name(token) {
        Ok(token.to_string())
    } else {
        Err(malformed(format!(
            "invalid {what} name `{token}` (ASCII letters, digits, `.`, `_`, `-`; \
             at most 64 characters)"
        )))
    }
}

fn parse_count(token: Option<&str>, what: &str) -> ProtoResult<usize> {
    token
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| malformed(format!("expected {what} (unsigned integer)")))
}

fn parse_index(token: Option<&str>, what: &str) -> ProtoResult<usize> {
    parse_count(token, what)
}

fn parse_u64(token: Option<&str>, what: &str) -> ProtoResult<u64> {
    token
        .and_then(|t| t.parse::<u64>().ok())
        .ok_or_else(|| malformed(format!("expected {what} (u64)")))
}

fn parse_version(token: Option<&str>) -> ProtoResult<u32> {
    token
        .and_then(|t| t.strip_prefix('v'))
        .and_then(|t| t.parse::<u32>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| malformed("expected a protocol version (`v1`, `v2`, …)"))
}

fn parse_f64(token: Option<&str>, what: &str) -> ProtoResult<f64> {
    token
        .and_then(|t| t.parse::<f64>().ok())
        .ok_or_else(|| malformed(format!("expected {what} (float)")))
}

fn reject_extra(token: Option<&str>, line: &str) -> ProtoResult<()> {
    match token {
        None => Ok(()),
        Some(extra) => Err(malformed(format!(
            "unexpected trailing token `{extra}` in `{line}`"
        ))),
    }
}

/// Splits a `mf_core::textio` document into protocol payload lines (the
/// inverse of joining a payload with `\n` before parsing it).
pub fn text_payload(text: &str) -> Vec<String> {
    text.lines().map(str::to_string).collect()
}

/// Parses exactly one request from a text buffer (convenience for tests and
/// the client's script translation).
pub fn request_from_text(text: &str) -> ProtoResult<Request> {
    let mut reader = ProtoReader::new(text.as_bytes());
    reader
        .read_request()?
        .ok_or(ProtoError::UnexpectedEof { context: "request" })
}

/// Parses exactly one response from a text buffer.
pub fn response_from_text(text: &str) -> ProtoResult<Response> {
    let mut reader = ProtoReader::new(text.as_bytes());
    reader.read_response()?.ok_or(ProtoError::UnexpectedEof {
        context: "response",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(valid_name("line6"));
        assert!(valid_name("a.b_c-d"));
        assert!(!valid_name(""));
        assert!(!valid_name("two words"));
        assert!(!valid_name("tab\there"));
        assert!(!valid_name(&"x".repeat(65)));
    }

    #[test]
    fn single_line_requests_round_trip() {
        for request in [
            Request::Unload { name: "a".into() },
            Request::List,
            Request::Stats,
            Request::Shutdown,
            Request::WhatIf {
                name: "inst".into(),
                probe: Probe::Move {
                    task: 3,
                    machine: 1,
                },
            },
            Request::WhatIf {
                name: "inst".into(),
                probe: Probe::Swap { a: 0, b: 5 },
            },
            Request::Solve {
                name: "inst".into(),
                method: SolveMethod::Heuristic("SD-H2".into()),
                seed: None,
            },
            Request::Solve {
                name: "inst".into(),
                method: SolveMethod::Portfolio,
                seed: Some(u64::MAX),
            },
        ] {
            let text = request_to_text(&request).unwrap();
            let parsed = request_from_text(&text).unwrap();
            assert_eq!(parsed, request);
            assert_eq!(request_to_text(&parsed).unwrap(), text);
        }
    }

    #[test]
    fn payload_requests_round_trip() {
        let request = Request::Load {
            name: "line".into(),
            payload: vec![
                "# comment".into(),
                "tasks 2".into(),
                "".into(),
                "  indented".into(),
            ],
        };
        let text = request_to_text(&request).unwrap();
        let parsed = request_from_text(&text).unwrap();
        assert_eq!(parsed, request);
        assert_eq!(request_to_text(&parsed).unwrap(), text);
    }

    #[test]
    fn truncated_payload_is_an_eof_error() {
        let err = request_from_text("load a 3\nonly one line\n").unwrap_err();
        assert!(matches!(err, ProtoError::UnexpectedEof { .. }), "{err}");
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            "frobnicate",
            "load",
            "load name",
            "load two words 0",
            "unload",
            "unload bad name",
            "list extra",
            "whatif a move 1",
            "whatif a shuffle 1 2",
            "solve a",
            "solve a exact",
            "solve a heuristic",
            "solve a portfolio seed",
            "solve a portfolio seed -3",
            "solve a portfolio seed 1 extra",
            "stats now",
            "shutdown please",
        ] {
            let err = request_from_text(&format!("{bad}\n")).unwrap_err();
            assert!(
                matches!(err, ProtoError::Malformed { .. }),
                "`{bad}` must be Malformed, was {err:?}"
            );
        }
    }

    #[test]
    fn responses_round_trip_with_lossless_floats() {
        for response in [
            Response::Loaded {
                name: "a".into(),
                tasks: 6,
                machines: 3,
                types: 2,
            },
            Response::Unloaded { name: "a".into() },
            Response::List(vec![
                InstanceInfo {
                    name: "a".into(),
                    tasks: 1,
                    machines: 2,
                    types: 1,
                },
                InstanceInfo {
                    name: "b".into(),
                    tasks: 100,
                    machines: 20,
                    types: 5,
                },
            ]),
            Response::List(Vec::new()),
            Response::Evaluated {
                period: 1.0 / 3.0,
                critical: 1,
                loads: vec![f64::MIN_POSITIVE, 437.519_480_519_480_5, 0.0],
            },
            Response::WhatIf {
                period: 1e300,
                critical: 0,
            },
            Response::Solved {
                label: "H6-H4w#1".into(),
                period: 12345.678901234567,
                machines: 3,
                assignment: vec![0, 2, 1, 1],
            },
            Response::Stats(vec![("requests".into(), 7), ("errors".into(), 0)]),
            Response::Shutdown,
            Response::Error {
                code: ErrorCode::UnknownInstance,
                detail: "no instance named `x` is loaded".into(),
            },
        ] {
            let text = response_to_text(&response).unwrap();
            let parsed = response_from_text(&text).unwrap();
            if let (
                Response::Evaluated {
                    period: a,
                    loads: la,
                    ..
                },
                Response::Evaluated {
                    period: b,
                    loads: lb,
                    ..
                },
            ) = (&parsed, &response)
            {
                assert_eq!(a.to_bits(), b.to_bits());
                for (x, y) in la.iter().zip(lb) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            assert_eq!(parsed, response);
            assert_eq!(response_to_text(&parsed).unwrap(), text);
        }
    }

    #[test]
    fn malformed_responses_are_typed_errors() {
        for bad in [
            "yes",
            "ok",
            "ok frobnicate",
            "ok load a x 3 2",
            "ok list 1\nnot an instance line\nend",
            "ok evaluate 1.5 0\nload 1 2.0\nend",
            "ok solve a 1.5 3 1\nassign 1 0\nend",
            "ok shutdown now",
            "err",
            "err what happened",
        ] {
            let err = response_from_text(&format!("{bad}\n")).unwrap_err();
            assert!(
                matches!(
                    err,
                    ProtoError::Malformed { .. } | ProtoError::UnexpectedEof { .. }
                ),
                "`{bad}` must fail typed, was {err:?}"
            );
        }
        // Truncated blocks hit EOF, not panics.
        let err = response_from_text("ok list 2\ninstance a 1 1 1\n").unwrap_err();
        assert!(matches!(err, ProtoError::UnexpectedEof { .. }), "{err}");
        let err = response_from_text("ok solve a 1.5 3 2\nassign 0 1\n").unwrap_err();
        assert!(matches!(err, ProtoError::UnexpectedEof { .. }), "{err}");
    }

    #[test]
    fn v2_requests_round_trip() {
        for request in [
            Request::Hello { requested: 1 },
            Request::Hello { requested: 2 },
            Request::Hello { requested: 7 },
            Request::StatusExport,
            Request::Batch(Vec::new()),
            Request::Batch(vec![
                Request::Load {
                    name: "a".into(),
                    payload: vec!["tasks 1".into(), "".into()],
                },
                Request::WhatIf {
                    name: "a".into(),
                    probe: Probe::Swap { a: 1, b: 2 },
                },
                Request::Solve {
                    name: "a".into(),
                    method: SolveMethod::Portfolio,
                    seed: Some(3),
                },
                Request::Unload { name: "a".into() },
            ]),
        ] {
            let text = request_to_text(&request).unwrap();
            let parsed = request_from_text(&text).unwrap();
            assert_eq!(parsed, request);
            assert_eq!(request_to_text(&parsed).unwrap(), text);
        }
    }

    #[test]
    fn v2_responses_round_trip() {
        for response in [
            Response::Hello {
                version: ProtoVersion::V1,
            },
            Response::Hello {
                version: ProtoVersion::V2,
            },
            Response::StatusExport(vec![
                "{".into(),
                "  \"format\": \"mf-stats v1\",".into(),
                "}".into(),
            ]),
            Response::Batch(Vec::new()),
            Response::Batch(vec![
                Response::Loaded {
                    name: "a".into(),
                    tasks: 2,
                    machines: 1,
                    types: 1,
                },
                Response::Evaluated {
                    period: 1.0 / 3.0,
                    critical: 0,
                    loads: vec![0.5],
                },
                Response::Error {
                    code: ErrorCode::NoResidentState,
                    detail: "no resident evaluator state".into(),
                },
            ]),
        ] {
            let text = response_to_text(&response).unwrap();
            let parsed = response_from_text(&text).unwrap();
            assert_eq!(parsed, response);
            assert_eq!(response_to_text(&parsed).unwrap(), text);
        }
    }

    #[test]
    fn batch_envelopes_cannot_nest() {
        let nested = Request::Batch(vec![Request::Batch(vec![Request::List])]);
        assert!(matches!(
            request_to_text(&nested),
            Err(ProtoError::UnencodableText { .. })
        ));
        let err = request_from_text("batch 1\nbatch 1\nlist\n").unwrap_err();
        assert!(matches!(err, ProtoError::Malformed { .. }), "{err}");
        let err = response_from_text("ok batch 1\nok batch 0\nend\nend\n").unwrap_err();
        assert!(matches!(err, ProtoError::Malformed { .. }), "{err}");
    }

    #[test]
    fn truncated_batch_is_an_eof_error_and_desyncs() {
        let mut reader = ProtoReader::new("batch 2\nlist\n".as_bytes());
        let err = reader.read_request().unwrap_err();
        assert!(matches!(err, ProtoError::UnexpectedEof { .. }), "{err}");
        assert!(
            reader.is_desynced(),
            "a torn envelope must desync the stream"
        );
        // A batch whose inner payload count is malformed also stays desynced.
        let mut reader = ProtoReader::new("batch 2\nload a 1\ntasks 1\nunload\n".as_bytes());
        let err = reader.read_request().unwrap_err();
        assert!(matches!(err, ProtoError::Malformed { .. }), "{err}");
        assert!(reader.is_desynced());
    }

    #[test]
    fn malformed_hellos_are_typed_errors() {
        for bad in [
            "hello",
            "hello mf-proto",
            "hello mf-proto 2",
            "hello mf-proto v0",
            "hello mf-proto vtwo",
            "hello other-proto v2",
            "hello mf-proto v2 extra",
            "status-export now",
        ] {
            let err = request_from_text(&format!("{bad}\n")).unwrap_err();
            assert!(
                matches!(err, ProtoError::Malformed { .. }),
                "`{bad}` must be Malformed, was {err:?}"
            );
        }
    }

    #[test]
    fn version_negotiation_prefers_the_highest_shared_version() {
        assert_eq!(ProtoVersion::negotiate(0), None);
        assert_eq!(ProtoVersion::negotiate(1), Some(ProtoVersion::V1));
        assert_eq!(ProtoVersion::negotiate(2), Some(ProtoVersion::V2));
        assert_eq!(ProtoVersion::negotiate(3), Some(ProtoVersion::V3));
        assert_eq!(ProtoVersion::negotiate(9), Some(ProtoVersion::V3));
        assert_eq!(ProtoVersion::V2.to_string(), "mf-proto v2");
        assert_eq!(ProtoVersion::V3.to_string(), "mf-proto v3");
        assert_eq!(ProtoVersion::default(), ProtoVersion::V1);
    }

    #[test]
    fn v3_anytime_requests_round_trip() {
        for request in [
            Request::Solve {
                name: "inst".into(),
                method: SolveMethod::Anytime { budget: None },
                seed: None,
            },
            Request::Solve {
                name: "inst".into(),
                method: SolveMethod::Anytime {
                    budget: Some(50_000),
                },
                seed: Some(7),
            },
            Request::Solve {
                name: "inst".into(),
                method: SolveMethod::Anytime { budget: None },
                seed: Some(u64::MAX),
            },
        ] {
            let text = request_to_text(&request).unwrap();
            let parsed = request_from_text(&text).unwrap();
            assert_eq!(parsed, request);
            assert_eq!(request_to_text(&parsed).unwrap(), text);
        }
        for bad in [
            "solve a anytime budget",
            "solve a anytime budget x",
            "solve a anytime budget 1 extra",
            "solve a anytime seed",
            "solve a anytime 5",
        ] {
            let err = request_from_text(&format!("{bad}\n")).unwrap_err();
            assert!(
                matches!(err, ProtoError::Malformed { .. }),
                "`{bad}` must be Malformed, was {err:?}"
            );
        }
    }

    #[test]
    fn v3_anytime_responses_round_trip_with_lossless_floats() {
        let response = Response::SolvedAnytime {
            reports: vec![
                GapReport {
                    phase: "seed".into(),
                    steps: 0,
                    period: 445.2,
                    bound: 381.266_188_263_734_9,
                    proven: false,
                },
                GapReport {
                    phase: "lns".into(),
                    steps: 12_500,
                    period: 440.1,
                    bound: 381.266_188_263_734_9,
                    proven: false,
                },
                GapReport {
                    phase: "bnb".into(),
                    steps: 14_061,
                    period: 437.519_480_519_480_5,
                    bound: 437.519_480_519_480_5,
                    proven: true,
                },
            ],
            period: 437.519_480_519_480_5,
            machines: 3,
            assignment: vec![0, 1, 2, 0, 1, 2],
        };
        let text = response_to_text(&response).unwrap();
        let parsed = response_from_text(&text).unwrap();
        if let (
            Response::SolvedAnytime { reports: a, .. },
            Response::SolvedAnytime { reports: b, .. },
        ) = (&parsed, &response)
        {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.period.to_bits(), y.period.to_bits());
                assert_eq!(x.bound.to_bits(), y.bound.to_bits());
            }
        }
        assert_eq!(parsed, response);
        assert_eq!(response_to_text(&parsed).unwrap(), text);

        // The empty-report and empty-assignment corners round-trip too.
        let empty = Response::SolvedAnytime {
            reports: Vec::new(),
            period: 1.5,
            machines: 1,
            assignment: Vec::new(),
        };
        let text = response_to_text(&empty).unwrap();
        assert_eq!(response_from_text(&text).unwrap(), empty);

        for bad in [
            "ok solve-anytime 1 1.5 3 0\ngap seed 0 1.5 1.0 2\nend",
            "ok solve-anytime 1 1.5 3 0\nnot a gap line\nend",
            "ok solve-anytime 0 1.5 3 1\nassign 1 0\nend",
            "ok solve-anytime 0 1.5 3 0\nmore\nend",
        ] {
            let err = response_from_text(&format!("{bad}\n")).unwrap_err();
            assert!(
                matches!(
                    err,
                    ProtoError::Malformed { .. } | ProtoError::UnexpectedEof { .. }
                ),
                "`{bad}` must fail typed, was {err:?}"
            );
        }
        let err = response_from_text("ok solve-anytime 1 1.5 3 0\n").unwrap_err();
        assert!(matches!(err, ProtoError::UnexpectedEof { .. }), "{err}");
    }

    #[test]
    fn unencodable_values_are_rejected_at_write_time() {
        assert!(matches!(
            request_to_text(&Request::Unload {
                name: "two words".into()
            }),
            Err(ProtoError::UnencodableText { .. })
        ));
        assert!(matches!(
            request_to_text(&Request::Load {
                name: "a".into(),
                payload: vec!["line\nbreak".into()],
            }),
            Err(ProtoError::UnencodableText { .. })
        ));
        assert!(matches!(
            response_to_text(&Response::Error {
                code: ErrorCode::BadRequest,
                detail: "two\nlines".into()
            }),
            Err(ProtoError::UnencodableText { .. })
        ));
    }
}
