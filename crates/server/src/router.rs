//! The sharded serving tier: a router in front of a pool of worker engines.
//!
//! A [`Router`] owns `N` independent [`Engine`]s — each with its **own**
//! [`InstanceStore`](crate::store::InstanceStore), its own solver pool and
//! its own keyed evaluate cache — and hashes every instance name onto one of
//! them. Heavy `solve … portfolio` traffic on one shard therefore cannot
//! stall cheap `evaluate` traffic on another, and each shard's caches stay
//! private to the names it owns.
//!
//! # Byte-identical to a single engine
//!
//! The router is a drop-in [`Handler`](crate::server::Handler): for the same
//! session script, a router with **any** worker count produces responses
//! byte-identical to a single-process [`Engine`] —
//!
//! * every answer is a pure function of (instance, request, seed), and a
//!   name's requests always land on the same worker in order;
//! * `list` is the name-sorted merge of the worker stores (one store's
//!   `BTreeMap` order is the same sort);
//! * `stats` keys are all plain sums of work done, so the index-aligned sum
//!   of the worker lists equals the single-engine list — with the
//!   session-level counters (`sessions`, `requests`, `errors`) kept by the
//!   router itself, since workers only see forwarded traffic;
//! * `batch` envelopes run their shards **in parallel** (one scoped thread
//!   per worker with items) and reassemble answers in request order, so the
//!   concurrency is invisible in the transcript.
//!
//! The one caveat: each worker bounds its store bytes independently, so
//! under byte-cap pressure the *eviction* schedule (not any answer to a
//! resident name) can differ from a single process.

use crate::engine::{gate_v2, hello_response, Engine, Session};
use crate::errors::EngineError;
use crate::journal::{Journal, JournalError};
use crate::obs::ObsConfig;
use crate::proto::{InstanceInfo, ProtoVersion, Request, Response};
use crate::stats::StatsReport;
use mf_obs::HistogramSnapshot;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Most workers a router will spin up (matches the workspace-wide thread
/// cap; each worker owns a full store byte budget and a rayon pool).
pub const MAX_WORKERS: usize = 16;

/// A shard router over a pool of worker [`Engine`]s.
pub struct Router {
    workers: Vec<Arc<Engine>>,
    /// The shared durable journal, when the tier runs with a data directory
    /// (one journal for the whole tier — worker shards append through it and
    /// the router surfaces its recovery counters).
    journal: Option<Arc<Journal>>,
    sessions: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// Per-connection router state: the negotiated version plus one lazily
/// created worker [`Session`] per shard, so resident what-if state lives on
/// the worker that owns the instance.
#[derive(Default)]
pub struct RouterSession {
    version: ProtoVersion,
    workers: Vec<Option<Session>>,
}

impl Router {
    /// A router over `workers` fresh engines (clamped to `1..=`
    /// [`MAX_WORKERS`]), each with a `threads`-worker solver pool (`0` = one
    /// per CPU, capped at 16).
    pub fn new(workers: usize, threads: usize) -> Self {
        Router::build(workers, threads, None, ObsConfig::default())
    }

    /// [`Router::new`] with explicit observability wiring. All workers
    /// share the config (one clock, one trace writer), so the tier's trace
    /// file interleaves every shard's spans on one timeline.
    pub fn with_observability(workers: usize, threads: usize, obs: ObsConfig) -> Self {
        Router::build(workers, threads, None, obs)
    }

    /// A durable router: one shared `mf-journal v1` under `data_dir`
    /// serves the whole tier. On boot every journaled instance is replayed
    /// into the worker shard its **name hashes to** — the same shard that
    /// will serve its requests — and every worker's generation counter is
    /// fast-forwarded past the journal's high-water mark, so no shard can
    /// reissue a pre-restart generation.
    pub fn with_data_dir(
        workers: usize,
        threads: usize,
        data_dir: impl AsRef<Path>,
    ) -> Result<Router, JournalError> {
        Router::with_data_dir_observability(workers, threads, data_dir, ObsConfig::default())
    }

    /// [`Router::with_data_dir`] with explicit observability wiring.
    pub fn with_data_dir_observability(
        workers: usize,
        threads: usize,
        data_dir: impl AsRef<Path>,
        obs: ObsConfig,
    ) -> Result<Router, JournalError> {
        let journal = Arc::new(Journal::open(data_dir)?);
        let router = Router::build(workers, threads, Some(Arc::clone(&journal)), obs);
        for recovered in journal.live_instances() {
            let shard = router.shard_of(&recovered.name);
            router.workers[shard].adopt(recovered)?;
        }
        for worker in &router.workers {
            worker.finish_replay();
        }
        Ok(router)
    }

    fn build(
        workers: usize,
        threads: usize,
        journal: Option<Arc<Journal>>,
        obs: ObsConfig,
    ) -> Self {
        let workers = workers.clamp(1, MAX_WORKERS);
        Router {
            workers: (0..workers)
                .map(|_| Arc::new(Engine::with_journal(threads, journal.clone(), obs.clone())))
                .collect(),
            journal,
            sessions: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// The number of worker shards.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The worker engines, indexed by shard.
    pub fn engines(&self) -> &[Arc<Engine>] {
        &self.workers
    }

    /// The shard a store name lives on: a splitmix64 chain over the name
    /// bytes, reduced modulo the worker count. Deterministic across
    /// processes and runs, so a name always finds its resident instance.
    pub fn shard_of(&self, name: &str) -> usize {
        let mut digest = mf_core::seed::splitmix64(0x6D66_5F72_6F75_7465);
        for &byte in name.as_bytes() {
            digest = mf_core::seed::splitmix64(digest ^ u64::from(byte));
        }
        (digest % self.workers.len() as u64) as usize
    }

    /// Starts a session (counted in `stats`).
    pub fn begin_session(&self) -> RouterSession {
        self.sessions.fetch_add(1, Ordering::Relaxed);
        RouterSession {
            version: ProtoVersion::default(),
            workers: self.workers.iter().map(|_| None).collect(),
        }
    }

    /// Dispatches one request: instance commands forward to the owning
    /// shard, aggregate commands (`list`, `stats`, `status-export`) merge
    /// over all workers, and `batch` fans its shards out in parallel.
    pub fn dispatch(&self, session: &mut RouterSession, request: Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let response = self.route(session, request);
        if matches!(response, Response::Error { .. }) {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    fn route(&self, session: &mut RouterSession, request: Request) -> Response {
        match request {
            Request::Hello { requested } => hello_response(requested, &mut session.version),
            Request::Batch(items) => match gate_v2(session.version, "batch") {
                Ok(()) => self.batch(session, items),
                Err(response) => response,
            },
            Request::StatusExport => match gate_v2(session.version, "status-export") {
                Ok(()) => Response::StatusExport(self.status_report().json_lines()),
                Err(response) => response,
            },
            Request::List => self.list(),
            Request::Stats => Response::Stats(self.stats_for(session.version)),
            Request::Shutdown => Response::Shutdown,
            request => {
                let name = request
                    .instance_name()
                    .expect("non-instance requests are routed above");
                let shard = self.shard_of(name);
                let worker = &self.workers[shard];
                worker.dispatch(session.worker(shard, worker), request)
            }
        }
    }

    /// Runs a batch envelope: items are bucketed by shard (preserving
    /// request order within each bucket), each non-empty bucket runs on its
    /// worker in one scoped thread, and the answers are scattered back into
    /// request order. Items on the same instance stay ordered on one
    /// worker, items on different instances are independent — so the
    /// parallel schedule cannot change any answer.
    fn batch(&self, session: &mut RouterSession, items: Vec<Request>) -> Response {
        let mut answers: Vec<Option<Response>> = items.iter().map(|_| None).collect();
        let mut buckets: Vec<Vec<(usize, Request)>> =
            self.workers.iter().map(|_| Vec::new()).collect();
        for (index, item) in items.into_iter().enumerate() {
            match item.instance_name() {
                Some(name) => {
                    let shard = self.shard_of(name);
                    buckets[shard].push((index, item));
                }
                None => {
                    answers[index] = Some(
                        EngineError::NotBatchable {
                            command: item.keyword(),
                        }
                        .into_response(),
                    );
                }
            }
        }
        // Materialize the worker sessions before the scoped threads borrow
        // the slots mutably.
        for (shard, bucket) in buckets.iter().enumerate() {
            if !bucket.is_empty() {
                session.worker(shard, &self.workers[shard]);
            }
        }
        let outcomes: Vec<Vec<(usize, Response)>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for ((worker, slot), bucket) in self
                .workers
                .iter()
                .zip(session.workers.iter_mut())
                .zip(buckets)
            {
                if bucket.is_empty() {
                    continue;
                }
                handles.push(scope.spawn(move || {
                    let worker_session = slot.as_mut().expect("materialized above");
                    bucket
                        .into_iter()
                        .map(|(index, item)| (index, worker.dispatch(worker_session, item)))
                        .collect::<Vec<_>>()
                }));
            }
            handles
                .into_iter()
                .map(|handle| handle.join().expect("batch shard thread panicked"))
                .collect()
        });
        for (index, response) in outcomes.into_iter().flatten() {
            answers[index] = Some(response);
        }
        let answers: Vec<Response> = answers
            .into_iter()
            .map(|answer| answer.expect("every batch item is answered"))
            .collect();
        // Counter parity with a single engine: every item is one request,
        // every error answer one error (the envelope itself was counted by
        // `dispatch` and is never an error).
        self.requests
            .fetch_add(answers.len() as u64, Ordering::Relaxed);
        let errors = answers
            .iter()
            .filter(|response| matches!(response, Response::Error { .. }))
            .count();
        self.errors.fetch_add(errors as u64, Ordering::Relaxed);
        Response::Batch(answers)
    }

    fn list(&self) -> Response {
        let mut entries: Vec<InstanceInfo> = self
            .workers
            .iter()
            .flat_map(|worker| {
                worker
                    .store()
                    .snapshot()
                    .iter()
                    .map(|stored| InstanceInfo {
                        name: stored.name.clone(),
                        tasks: stored.tasks(),
                        machines: stored.machines(),
                        types: stored.types(),
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Response::List(entries)
    }

    /// The aggregated statistics: the index-aligned sum of the worker lists,
    /// with the session-level counters replaced by the router's own (workers
    /// only ever see forwarded traffic, the router sees the session).
    pub fn stats_for(&self, version: ProtoVersion) -> Vec<(String, u64)> {
        let mut totals = self.workers[0].stats_for(version);
        for worker in &self.workers[1..] {
            for (total, (key, value)) in totals.iter_mut().zip(worker.stats_for(version)) {
                debug_assert_eq!(total.0, key, "worker stats lists must align");
                total.1 += value;
            }
        }
        for (key, value) in totals.iter_mut() {
            match key.as_str() {
                "sessions" => *value = self.sessions.load(Ordering::Relaxed),
                "requests" => *value = self.requests.load(Ordering::Relaxed),
                "errors" => *value = self.errors.load(Ordering::Relaxed),
                _ => {}
            }
        }
        totals
    }

    /// The full machine-readable report: aggregated counters plus the raw
    /// per-worker lists (the only place worker topology is visible — plain
    /// `stats` stays byte-identical across worker counts).
    pub fn status_report(&self) -> StatsReport {
        StatsReport {
            recovery: self
                .journal
                .as_ref()
                .map(|journal| journal.status_counters())
                .unwrap_or_default(),
            global: self.stats_for(ProtoVersion::V3),
            histograms: self.histograms(),
            workers: self
                .workers
                .iter()
                .map(|worker| worker.stats_for(ProtoVersion::V3))
                .collect(),
        }
    }

    /// The tier's per-command latency histograms: the bucket-wise sum of
    /// every worker's snapshot (the lists are index-aligned by
    /// construction — every engine tracks the same commands in the same
    /// order). The router forwards without timing of its own, so this sum
    /// **is** the tier's request-latency distribution.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut totals = self.workers[0].histograms();
        for worker in &self.workers[1..] {
            for (total, (key, snapshot)) in totals.iter_mut().zip(worker.histograms()) {
                debug_assert_eq!(total.0, key, "worker histogram lists must align");
                total.1.merge(&snapshot);
            }
        }
        totals
    }
}

impl RouterSession {
    /// The worker session of one shard, created on first touch. The
    /// router's negotiated version is copied down on every touch: the
    /// client's `hello` only ever reaches the router, yet version-gated
    /// commands (`solve … anytime`) are gated again by the worker engine.
    fn worker(&mut self, shard: usize, engine: &Engine) -> &mut Session {
        let version = self.version;
        let session = self.workers[shard].get_or_insert_with(|| engine.begin_session());
        session.sync_version(version);
        session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::text_payload;
    use mf_core::textio;
    use mf_sim::{GeneratorConfig, InstanceGenerator};

    fn instance_text(seed: u64) -> String {
        let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(6, 3, 2))
            .generate(seed)
            .unwrap();
        textio::instance_to_text(&instance)
    }

    fn load(router: &Router, session: &mut RouterSession, name: &str, text: &str) {
        let response = router.dispatch(
            session,
            Request::Load {
                name: name.into(),
                payload: text_payload(text),
            },
        );
        assert!(matches!(response, Response::Loaded { .. }), "{response:?}");
    }

    #[test]
    fn sharding_is_stable_and_spreads_names() {
        let router = Router::new(4, 1);
        let mut used = std::collections::HashSet::new();
        for k in 0..64 {
            let name = format!("inst{k}");
            let shard = router.shard_of(&name);
            assert_eq!(shard, router.shard_of(&name), "sharding must be stable");
            assert!(shard < 4);
            used.insert(shard);
        }
        assert_eq!(used.len(), 4, "64 names must touch all 4 shards");
        // Worker counts are clamped, never zero.
        assert_eq!(Router::new(0, 1).workers(), 1);
        assert_eq!(Router::new(99, 1).workers(), MAX_WORKERS);
    }

    #[test]
    fn list_merges_worker_stores_sorted_by_name() {
        let router = Router::new(3, 1);
        let mut session = router.begin_session();
        for name in ["zeta", "alpha", "mid"] {
            load(&router, &mut session, name, &instance_text(1));
        }
        let Response::List(entries) = router.dispatch(&mut session, Request::List) else {
            panic!("list failed");
        };
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn stats_aggregate_over_workers_with_router_session_counters() {
        let router = Router::new(4, 1);
        let mut session = router.begin_session();
        for k in 0..8 {
            load(
                &router,
                &mut session,
                &format!("inst{k}"),
                &instance_text(1),
            );
        }
        let unknown = router.dispatch(
            &mut session,
            Request::Unload {
                name: "missing".into(),
            },
        );
        assert!(matches!(unknown, Response::Error { .. }));
        let Response::Stats(stats) = router.dispatch(&mut session, Request::Stats) else {
            panic!("stats failed");
        };
        let get = |key: &str| stats.iter().find(|(k, _)| k == key).unwrap().1;
        assert_eq!(get("instances"), 8, "summed over shards");
        assert_eq!(get("loads"), 8);
        assert_eq!(get("sessions"), 1, "router-level, not per touched worker");
        assert_eq!(get("requests"), 10);
        assert_eq!(get("errors"), 1);
        // v1 sessions see exactly the 16 v1 keys.
        assert_eq!(stats.len(), 16);
    }

    #[test]
    fn status_report_lists_every_worker() {
        let router = Router::new(2, 1);
        let mut session = router.begin_session();
        load(&router, &mut session, "a", &instance_text(1));
        let report = router.status_report();
        assert_eq!(report.workers.len(), 2);
        let get =
            |list: &[(String, u64)], key: &str| list.iter().find(|(k, _)| k == key).unwrap().1;
        assert_eq!(get(&report.global, "loads"), 1);
        let worker_loads: u64 = report
            .workers
            .iter()
            .map(|worker| get(worker, "loads"))
            .sum();
        assert_eq!(worker_loads, 1, "exactly one worker saw the load");
    }
}
