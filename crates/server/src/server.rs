//! The serve loops: a thread-per-connection TCP listener and a pipe-driven
//! stdio mode, both speaking `mf-proto` against one shared [`Handler`] —
//! a single [`Engine`] or a sharded [`Router`](crate::router::Router).
//!
//! The server is std-only — `std::net::TcpListener` plus `std::thread` — so
//! it runs in the offline build environment; the parallelism that matters
//! (the portfolio race, the router's batch fan-out) happens inside the
//! handler, which every session borrows per request.
//!
//! Shutdown is cooperative: a `shutdown` request answers `ok shutdown`, ends
//! its own session, and stops the accept loop (already-open sessions run to
//! completion; new connections are refused by the closed listener).

use crate::engine::Engine;
use crate::proto::{ProtoError, ProtoReader, Request, Response, GREETING};
use crate::router::Router;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Anything a serve loop can put behind the protocol: one shared dispatcher
/// handing out per-connection session state. [`Engine`] is the
/// single-process implementation, [`Router`] the sharded one — and the
/// router is pinned byte-identical to the engine for any worker count.
pub trait Handler: Send + Sync {
    /// Per-connection state (resident evaluator snapshots, negotiated
    /// protocol version, …).
    type Session: Send;

    /// Starts a session (counted in `stats`).
    fn begin_session(&self) -> Self::Session;

    /// Answers one request against the shared state and this session.
    fn dispatch(&self, session: &mut Self::Session, request: Request) -> Response;
}

impl Handler for Engine {
    type Session = crate::engine::Session;

    fn begin_session(&self) -> Self::Session {
        Engine::begin_session(self)
    }

    fn dispatch(&self, session: &mut Self::Session, request: Request) -> Response {
        Engine::dispatch(self, session, request)
    }
}

impl Handler for Router {
    type Session = crate::router::RouterSession;

    fn begin_session(&self) -> Self::Session {
        Router::begin_session(self)
    }

    fn dispatch(&self, session: &mut Self::Session, request: Request) -> Response {
        Router::dispatch(self, session, request)
    }
}

/// Runs one session: greeting, then a request/response loop until EOF or
/// `shutdown`. Returns `true` when the session ended with a `shutdown`
/// request.
///
/// Malformed request lines answer `err bad-request …` and the session
/// continues; an input that ends mid-payload answers the error and closes
/// the session (the stream offset is no longer trustworthy).
pub fn run_session<H: Handler>(
    handler: &H,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<bool> {
    let mut session = handler.begin_session();
    let mut reader = ProtoReader::new(input);
    writeln!(output, "{GREETING}")?;
    output.flush()?;
    loop {
        let request = match reader.read_request() {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(false), // clean EOF
            Err(ProtoError::Io(detail)) => {
                return Err(std::io::Error::other(detail));
            }
            Err(error) => {
                let response =
                    Response::error(crate::proto::ErrorCode::BadRequest, error.to_string());
                write_response(&mut output, &response)?;
                // A truncated input, or a failed `load`/`evaluate`/`batch`
                // head whose payload count never parsed, leaves the stream
                // offset untrustworthy — the following lines could be
                // payload, and executing them as commands would cascade
                // garbage. Close.
                if matches!(error, ProtoError::UnexpectedEof { .. }) || reader.is_desynced() {
                    return Ok(false);
                }
                continue;
            }
        };
        let shutdown = matches!(request, Request::Shutdown);
        let response = handler.dispatch(&mut session, request);
        write_response(&mut output, &response)?;
        if shutdown {
            return Ok(true);
        }
    }
}

fn write_response(output: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let text = crate::proto::response_to_text(response)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    output.write_all(text.as_bytes())?;
    output.flush()
}

/// Serves a single session over arbitrary byte streams — the `--stdio` mode
/// used by pipe-driven tests and the CI golden transcript.
pub fn serve_stdio<H: Handler>(
    handler: &H,
    input: impl BufRead,
    output: impl Write,
) -> std::io::Result<()> {
    run_session(handler, input, output).map(|_| ())
}

/// Consecutive accept failures after which [`Server::run`] gives up and
/// returns the listener error. Transient failures (fd exhaustion, aborted
/// handshakes) reset on the next successful accept; a permanently broken
/// listener must surface as an error instead of spinning the 50 ms backoff
/// loop silently forever.
pub const MAX_ACCEPT_FAILURES: u32 = 64;

/// Accept-loop failure policy: back off on a transient error, give up with
/// the error once [`MAX_ACCEPT_FAILURES`] failures arrive without a single
/// successful accept in between.
#[derive(Debug, Default)]
struct AcceptRetry {
    consecutive: u32,
}

impl AcceptRetry {
    /// A successful accept: the failure streak resets.
    fn succeeded(&mut self) {
        self.consecutive = 0;
    }

    /// A failed accept: the backoff to sleep, or — once the streak reaches
    /// [`MAX_ACCEPT_FAILURES`] — the error itself to return.
    fn failed(&mut self, error: std::io::Error) -> std::io::Result<std::time::Duration> {
        self.consecutive += 1;
        if self.consecutive >= MAX_ACCEPT_FAILURES {
            Err(error)
        } else {
            Ok(std::time::Duration::from_millis(50))
        }
    }
}

/// A TCP server: one accept loop, one thread per connection, one shared
/// [`Handler`] (an [`Engine`] by default, a [`Router`] for `--workers N`).
pub struct Server<H: Handler = Engine> {
    handler: Arc<H>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

impl Server<Engine> {
    /// Binds a listener (`port 0` picks an ephemeral port) over a fresh
    /// engine with `threads` solver workers.
    pub fn bind(addr: impl ToSocketAddrs, threads: usize) -> std::io::Result<Server> {
        Server::with_handler(addr, Arc::new(Engine::new(threads)))
    }

    /// Binds a listener over an existing engine (lets tests pre-load the
    /// store).
    pub fn with_engine(addr: impl ToSocketAddrs, engine: Arc<Engine>) -> std::io::Result<Server> {
        Server::with_handler(addr, engine)
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.handler
    }
}

impl Server<Router> {
    /// Binds a listener over a fresh [`Router`] with `workers` shard
    /// engines of `threads` solver workers each.
    pub fn bind_router(
        addr: impl ToSocketAddrs,
        workers: usize,
        threads: usize,
    ) -> std::io::Result<Server<Router>> {
        Server::with_handler(addr, Arc::new(Router::new(workers, threads)))
    }

    /// The shared router.
    pub fn router(&self) -> &Arc<Router> {
        &self.handler
    }
}

impl<H: Handler + 'static> Server<H> {
    /// Binds a listener over any shared handler.
    pub fn with_handler(addr: impl ToSocketAddrs, handler: Arc<H>) -> std::io::Result<Server<H>> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            handler,
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (needed with `port 0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared handler.
    pub fn handler(&self) -> &Arc<H> {
        &self.handler
    }

    /// Runs the accept loop until a session requests `shutdown`, then joins
    /// the remaining session threads. [`MAX_ACCEPT_FAILURES`] consecutive
    /// accept failures return the last error instead (open sessions keep
    /// running detached; there is nothing left to accept for).
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.local_addr()?;
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut retry = AcceptRetry::default();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Reap finished sessions — on the error path too — so a
            // long-lived server doesn't grow a handle per connection it
            // ever served.
            handles.retain(|handle| !handle.is_finished());
            let stream = match stream {
                Ok(stream) => {
                    retry.succeeded();
                    stream
                }
                Err(error) => {
                    // Transient accept errors (e.g. fd exhaustion) would
                    // otherwise fail instantly forever — back off instead of
                    // spinning the loop hot; a broken listener gives up.
                    std::thread::sleep(retry.failed(error)?);
                    continue;
                }
            };
            let handler = Arc::clone(&self.handler);
            let shutdown = Arc::clone(&self.shutdown);
            handles.push(std::thread::spawn(move || {
                if let Ok(true) = handle_connection(&*handler, stream) {
                    shutdown.store(true, Ordering::SeqCst);
                    // Unblock the accept loop with a throwaway connection.
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

fn handle_connection<H: Handler>(handler: &H, stream: TcpStream) -> std::io::Result<bool> {
    let reader = BufReader::new(stream.try_clone()?);
    let writer = BufWriter::new(stream);
    run_session(handler, reader, writer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdio_session_greets_and_answers() {
        let engine = Engine::new(1);
        let mut output = Vec::new();
        serve_stdio(&engine, "list\nstats\n".as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.starts_with("mf-proto v1\n"), "{text}");
        assert!(text.contains("ok list 0"), "{text}");
        assert!(text.contains("stat requests 2"), "{text}");
    }

    #[test]
    fn malformed_lines_answer_errors_without_killing_the_session() {
        let engine = Engine::new(1);
        let mut output = Vec::new();
        serve_stdio(
            &engine,
            "frobnicate\nlist\nshutdown\n".as_bytes(),
            &mut output,
        )
        .unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("err bad-request"), "{text}");
        assert!(text.contains("ok list 0"), "{text}");
        assert!(text.contains("ok shutdown"), "{text}");
    }

    #[test]
    fn bad_load_head_closes_the_session_instead_of_executing_payload() {
        // `5x` is not a count, so the 2 would-be payload lines are still in
        // the stream; executing them as commands would desync the protocol.
        let engine = Engine::new(1);
        let mut output = Vec::new();
        serve_stdio(
            &engine,
            "load a 5x\ntasks 1\nlist\nshutdown\n".as_bytes(),
            &mut output,
        )
        .unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("err bad-request"), "{text}");
        assert!(
            !text.contains("ok list") && !text.contains("ok shutdown"),
            "payload lines must not execute: {text}"
        );
    }

    #[test]
    fn truncated_payload_ends_the_session_with_an_error() {
        let engine = Engine::new(1);
        let mut output = Vec::new();
        serve_stdio(&engine, "load a 5\ntasks 1\n".as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("err bad-request"), "{text}");
    }

    #[test]
    fn routers_serve_stdio_sessions_too() {
        let router = Router::new(2, 1);
        let mut output = Vec::new();
        serve_stdio(
            &router,
            "hello mf-proto v2\nlist\nstats\nshutdown\n".as_bytes(),
            &mut output,
        )
        .unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.starts_with("mf-proto v1\n"), "{text}");
        assert!(text.contains("ok hello mf-proto v2"), "{text}");
        assert!(text.contains("ok list 0"), "{text}");
        assert!(text.contains("stat evaluate-cache-hits 0"), "{text}");
        assert!(text.contains("ok shutdown"), "{text}");
    }

    #[test]
    fn accept_retry_backs_off_then_gives_up_after_consecutive_failures() {
        let failure = || std::io::Error::other("accept failed");
        // Below the threshold every failure is a 50 ms backoff.
        let mut retry = AcceptRetry::default();
        for _ in 0..MAX_ACCEPT_FAILURES - 1 {
            let backoff = retry
                .failed(failure())
                .expect("transient failures back off");
            assert_eq!(backoff, std::time::Duration::from_millis(50));
        }
        // The streak-completing failure is returned.
        assert!(retry.failed(failure()).is_err());

        // A single success resets the streak: the same count of failures
        // interleaved with accepts never gives up.
        let mut retry = AcceptRetry::default();
        for _ in 0..3 * MAX_ACCEPT_FAILURES {
            assert!(retry.failed(failure()).is_ok());
            retry.succeeded();
        }
    }

    #[test]
    fn v1_sessions_cannot_batch_and_torn_batches_close_the_session() {
        let engine = Engine::new(1);
        let mut output = Vec::new();
        serve_stdio(&engine, "batch 1\nlist\nshutdown\n".as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(
            text.contains("err bad-request `batch` requires mf-proto v2"),
            "{text}"
        );
        assert!(text.contains("ok shutdown"), "{text}");
        // A batch whose envelope tears mid-parse desyncs and closes.
        let mut output = Vec::new();
        serve_stdio(
            &engine,
            "hello mf-proto v2\nbatch 2\nlist\n".as_bytes(),
            &mut output,
        )
        .unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("ok hello mf-proto v2"), "{text}");
        assert!(text.contains("err bad-request"), "{text}");
    }
}
