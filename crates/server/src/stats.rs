//! `mf-stats v1` — the machine-readable statistics report.
//!
//! The plain `stats` command answers a fixed-order key/value list; this
//! module renders the same counters — plus the per-worker breakdown of a
//! sharded server — as **one JSON document** for the `status-export`
//! protocol command and the `microfactory stats --json` CLI. The document is
//! written by hand (the build environment is offline; no serde) in a
//! canonical form: fixed key order, two-space indentation, integers only —
//! so two reports with equal counters are byte-identical and the CI can diff
//! and archive them.

use std::fmt::Write as _;

use mf_obs::HistogramSnapshot;

/// The `format` tag every report carries, versioned independently of the
/// wire protocol.
pub const STATS_FORMAT: &str = "mf-stats v1";

/// A statistics report: the aggregated counters of the serving tier plus
/// one raw counter list per worker.
///
/// For a single-engine server the report has one worker whose counters equal
/// the global list; for a router, `global` is the key-wise sum over workers
/// with the session-level counters (`sessions`, `requests`, `errors`)
/// replaced by the router's own — exactly what its `stats` command answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReport {
    /// Journal-replay counters of a durable server (empty on in-memory
    /// servers, which keeps their documents byte-identical to before
    /// `mf-journal` existed).
    pub recovery: Vec<(String, u64)>,
    /// The aggregated counters, in `stats` presentation order.
    pub global: Vec<(String, u64)>,
    /// Per-command request-latency histograms, in
    /// [`TRACKED_COMMANDS`](crate::obs::TRACKED_COMMANDS) order. On a
    /// router this is the bucket-wise sum over its workers. Commands never
    /// seen are skipped in the JSON; an entirely idle tier omits the block
    /// (which keeps pre-`mf-obs` documents byte-identical).
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Per-worker raw counters, indexed by shard.
    pub workers: Vec<Vec<(String, u64)>>,
}

impl StatsReport {
    /// The canonical JSON document, one element per line (the payload lines
    /// of an `ok status-export` response).
    pub fn json_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        lines.push("{".to_string());
        lines.push(format!("  \"format\": {},", json_string(STATS_FORMAT)));
        lines.push(format!("  \"workers\": {},", self.workers.len()));
        if !self.recovery.is_empty() {
            lines.push("  \"recovery\": {".to_string());
            push_counters(&mut lines, "    ", &self.recovery);
            lines.push("  },".to_string());
        }
        let histograms: Vec<&(String, HistogramSnapshot)> = self
            .histograms
            .iter()
            .filter(|(_, snapshot)| snapshot.count() > 0)
            .collect();
        lines.push("  \"global\": {".to_string());
        push_counters(&mut lines, "    ", &self.global);
        let trailer = if histograms.is_empty() && self.workers.is_empty() {
            ""
        } else {
            ","
        };
        lines.push(format!("  }}{trailer}"));
        if !histograms.is_empty() {
            lines.push("  \"histograms\": {".to_string());
            for (index, (command, snapshot)) in histograms.iter().enumerate() {
                lines.push(format!("    {}: {{", json_string(command)));
                lines.push(format!("      \"count\": {},", snapshot.count()));
                lines.push(format!("      \"sum-ns\": {},", snapshot.sum_ns()));
                lines.push(format!("      \"max-ns\": {},", snapshot.max_ns()));
                lines.push(format!("      \"p50-ns\": {},", snapshot.p50_ns()));
                lines.push(format!("      \"p90-ns\": {},", snapshot.p90_ns()));
                lines.push(format!("      \"p99-ns\": {},", snapshot.p99_ns()));
                let buckets: Vec<String> = snapshot
                    .nonzero_buckets()
                    .iter()
                    .map(|(bucket, count)| format!("[{bucket}, {count}]"))
                    .collect();
                lines.push(format!("      \"buckets\": [{}]", buckets.join(", ")));
                let comma = if index + 1 < histograms.len() {
                    ","
                } else {
                    ""
                };
                lines.push(format!("    }}{comma}"));
            }
            let trailer = if self.workers.is_empty() { "" } else { "," };
            lines.push(format!("  }}{trailer}"));
        }
        if !self.workers.is_empty() {
            lines.push("  \"per-worker\": [".to_string());
            for (index, worker) in self.workers.iter().enumerate() {
                lines.push("    {".to_string());
                push_counters(&mut lines, "      ", worker);
                let comma = if index + 1 < self.workers.len() {
                    ","
                } else {
                    ""
                };
                lines.push(format!("    }}{comma}"));
            }
            lines.push("  ]".to_string());
        }
        lines.push("}".to_string());
        lines
    }

    /// The canonical JSON document as one string (trailing newline
    /// included) — what `stats --json` prints and the CI archives.
    pub fn to_json(&self) -> String {
        let mut out = self.json_lines().join("\n");
        out.push('\n');
        out
    }
}

fn push_counters(lines: &mut Vec<String>, indent: &str, counters: &[(String, u64)]) {
    for (index, (key, value)) in counters.iter().enumerate() {
        let comma = if index + 1 < counters.len() { "," } else { "" };
        lines.push(format!("{indent}{}: {value}{comma}", json_string(key)));
    }
}

/// Minimal JSON string encoder. Counter keys are protocol-name tokens, but
/// escaping here keeps the document well-formed for any future key.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// The document shape is pinned literally: `status-export` consumers
    /// (CI artifact diffs, dashboards) parse this exact form.
    #[test]
    fn json_document_is_pinned() {
        let report = StatsReport {
            recovery: Vec::new(),
            global: counters(&[("loads", 3), ("errors", 0)]),
            histograms: Vec::new(),
            workers: vec![
                counters(&[("loads", 1), ("errors", 0)]),
                counters(&[("loads", 2), ("errors", 0)]),
            ],
        };
        let expected = "\
{
  \"format\": \"mf-stats v1\",
  \"workers\": 2,
  \"global\": {
    \"loads\": 3,
    \"errors\": 0
  },
  \"per-worker\": [
    {
      \"loads\": 1,
      \"errors\": 0
    },
    {
      \"loads\": 2,
      \"errors\": 0
    }
  ]
}
";
        assert_eq!(report.to_json(), expected);
        // The lines form is exactly the document split on newlines — the
        // payload a `status-export` response carries.
        assert_eq!(
            report.json_lines(),
            expected.trim_end().split('\n').collect::<Vec<_>>()
        );
    }

    /// The `histograms` block sits between `global` and `per-worker`;
    /// commands with no samples are skipped, and an all-empty list omits
    /// the block entirely — so the documents of a tier that predates
    /// `mf-obs` are byte-identical to before the block existed.
    #[test]
    fn histogram_block_is_pinned_and_empty_commands_are_skipped() {
        let solve = mf_obs::Histogram::new();
        solve.record(900);
        solve.record(1000);
        solve.record(70_000);
        let report = StatsReport {
            recovery: Vec::new(),
            global: counters(&[("loads", 1)]),
            histograms: vec![
                ("hello".to_string(), HistogramSnapshot::empty()),
                ("solve".to_string(), solve.snapshot()),
            ],
            workers: vec![counters(&[("loads", 1)])],
        };
        let expected = "\
{
  \"format\": \"mf-stats v1\",
  \"workers\": 1,
  \"global\": {
    \"loads\": 1
  },
  \"histograms\": {
    \"solve\": {
      \"count\": 3,
      \"sum-ns\": 71900,
      \"max-ns\": 70000,
      \"p50-ns\": 1023,
      \"p90-ns\": 70000,
      \"p99-ns\": 70000,
      \"buckets\": [[10, 2], [17, 1]]
    }
  },
  \"per-worker\": [
    {
      \"loads\": 1
    }
  ]
}
";
        assert_eq!(report.to_json(), expected);

        // All histograms empty: the block vanishes and the document equals
        // one built with no histogram list at all.
        let silent = StatsReport {
            histograms: vec![("hello".to_string(), HistogramSnapshot::empty())],
            workers: Vec::new(),
            ..report.clone()
        };
        let bare = StatsReport {
            histograms: Vec::new(),
            ..silent.clone()
        };
        assert_eq!(silent.to_json(), bare.to_json());
        assert!(!silent.to_json().contains("histograms"));
    }

    #[test]
    fn workerless_reports_omit_the_per_worker_array() {
        let report = StatsReport {
            recovery: Vec::new(),
            global: counters(&[("requests", 1)]),
            histograms: Vec::new(),
            workers: Vec::new(),
        };
        let json = report.to_json();
        assert!(!json.contains("per-worker"), "{json}");
        assert!(!json.contains("recovery"), "{json}");
        assert!(json.contains("\"workers\": 0"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
    }

    /// A durable server's report carries the journal-replay block between
    /// the worker count and the global counters; its shape is pinned
    /// literally like the base document.
    #[test]
    fn recovery_block_is_pinned_when_present() {
        let report = StatsReport {
            recovery: counters(&[("journal-entries-replayed", 3), ("journal-compactions", 1)]),
            global: counters(&[("loads", 2)]),
            histograms: Vec::new(),
            workers: vec![counters(&[("loads", 2)])],
        };
        let expected = "\
{
  \"format\": \"mf-stats v1\",
  \"workers\": 1,
  \"recovery\": {
    \"journal-entries-replayed\": 3,
    \"journal-compactions\": 1
  },
  \"global\": {
    \"loads\": 2
  },
  \"per-worker\": [
    {
      \"loads\": 2
    }
  ]
}
";
        assert_eq!(report.to_json(), expected);
    }

    #[test]
    fn keys_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
