//! The resident instance store shared by every session.
//!
//! Instances are loaded once (via `mf_core::textio`) and stay resident;
//! every session sees the same store. Each load gets a process-unique
//! **generation** number so session-scoped caches (resident evaluator
//! snapshots) can tell a reloaded instance from the one they were built
//! against without comparing instance contents.
//!
//! The store is **capped**: resident instances are charged their approximate
//! byte footprint, and when a load pushes the total past the cap the
//! least-recently-used instances are evicted (never the one just loaded).
//! Hits, misses and evictions are counted for the `stats` command, so a
//! long-running server's cache behavior is observable.

use mf_core::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Default byte budget of a store: 256 MiB of instance matrices — far more
/// than any paper-scale workload, low enough to bound a churn-heavy server.
pub const DEFAULT_STORE_BYTES: u64 = 256 << 20;

/// One resident instance.
#[derive(Debug)]
pub struct StoredInstance {
    /// Store name.
    pub name: String,
    /// Process-unique load generation (bumped on every `load`, including
    /// same-name replacements).
    pub generation: u64,
    /// The parsed instance.
    pub instance: Instance,
}

impl StoredInstance {
    /// Task count of the instance.
    pub fn tasks(&self) -> usize {
        self.instance.task_count()
    }

    /// Machine count of the instance.
    pub fn machines(&self) -> usize {
        self.instance.machine_count()
    }

    /// Task-type count of the instance.
    pub fn types(&self) -> usize {
        self.instance.application().type_count()
    }

    /// Approximate resident footprint: the `p×m` time matrix, the `n×m`
    /// failure matrix and the per-task vectors, in 8-byte cells. The real
    /// heap layout differs by allocator slop; the cap only needs relative
    /// proportionality.
    pub fn approx_bytes(&self) -> u64 {
        let n = self.tasks() as u64;
        let m = self.machines() as u64;
        let p = self.types() as u64;
        8 * (p * m + n * m + 4 * n + m)
    }
}

/// One store slot: the shared instance plus its recency stamp (updated under
/// the read lock, hence atomic).
#[derive(Debug)]
struct StoreSlot {
    stored: Arc<StoredInstance>,
    last_used: AtomicU64,
}

/// Aggregated cache counters of a store (see [`InstanceStore::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Approximate bytes currently resident.
    pub bytes: u64,
    /// `get` calls that found their instance.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Instances evicted by the byte cap (explicit `unload`s not included).
    pub evictions: u64,
}

/// A thread-safe, LRU-capped name → instance map. `BTreeMap` keeps `list`
/// responses in deterministic (sorted) order without a per-call sort.
#[derive(Debug)]
pub struct InstanceStore {
    instances: RwLock<BTreeMap<String, StoreSlot>>,
    generations: AtomicU64,
    clock: AtomicU64,
    max_bytes: u64,
    bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for InstanceStore {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_STORE_BYTES)
    }
}

impl InstanceStore {
    /// An empty store with the default byte budget
    /// ([`DEFAULT_STORE_BYTES`]).
    pub fn new() -> Self {
        InstanceStore::default()
    }

    /// An empty store holding at most ~`max_bytes` of instance data (the
    /// most recently loaded instance is always kept, even above the cap).
    pub fn with_capacity(max_bytes: u64) -> Self {
        InstanceStore {
            instances: RwLock::new(BTreeMap::new()),
            generations: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            max_bytes,
            bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    #[inline]
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Inserts (or replaces) an instance under a name; returns the stored
    /// handle. Replacement is deliberate: reloading a name atomically swaps
    /// the instance every later request sees, and the fresh generation
    /// invalidates all session caches built against the old one. If the
    /// insert pushes the store past its byte cap, least-recently-used
    /// instances (never this one) are evicted.
    pub fn insert(&self, name: &str, instance: Instance) -> Arc<StoredInstance> {
        let stored = Arc::new(StoredInstance {
            name: name.to_string(),
            generation: self.generations.fetch_add(1, Ordering::Relaxed),
            instance,
        });
        let added = stored.approx_bytes();
        let mut map = self.instances.write().expect("store lock poisoned");
        if let Some(previous) = map.insert(
            name.to_string(),
            StoreSlot {
                stored: Arc::clone(&stored),
                last_used: AtomicU64::new(self.tick()),
            },
        ) {
            self.bytes
                .fetch_sub(previous.stored.approx_bytes(), Ordering::Relaxed);
        }
        let mut total = self.bytes.fetch_add(added, Ordering::Relaxed) + added;
        // Evict coldest-first until back under the cap; the entry just
        // inserted is exempt so a single oversized instance still loads.
        while total > self.max_bytes && map.len() > 1 {
            let Some(coldest) = map
                .iter()
                .filter(|(key, _)| key.as_str() != name)
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            let slot = map.remove(&coldest).expect("key just observed");
            let freed = slot.stored.approx_bytes();
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            total -= freed;
        }
        stored
    }

    /// The instance under a name, if loaded (refreshes its recency and
    /// counts the hit/miss).
    pub fn get(&self, name: &str) -> Option<Arc<StoredInstance>> {
        let map = self.instances.read().expect("store lock poisoned");
        match map.get(name) {
            Some(slot) => {
                slot.last_used.store(self.tick(), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.stored))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Removes an instance; `true` if it was present.
    pub fn remove(&self, name: &str) -> bool {
        let mut map = self.instances.write().expect("store lock poisoned");
        match map.remove(name) {
            Some(slot) => {
                self.bytes
                    .fetch_sub(slot.stored.approx_bytes(), Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Number of resident instances.
    pub fn len(&self) -> usize {
        self.instances.read().expect("store lock poisoned").len()
    }

    /// `true` when no instance is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All resident instances, sorted by name.
    pub fn snapshot(&self) -> Vec<Arc<StoredInstance>> {
        self.instances
            .read()
            .expect("store lock poisoned")
            .values()
            .map(|slot| Arc::clone(&slot.stored))
            .collect()
    }

    /// The cache counters (bytes resident, hits, misses, evictions).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            bytes: self.bytes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_core::textio;

    fn tiny_instance() -> Instance {
        textio::instance_from_text(
            "tasks 1\nmachines 1\ntypes 1\ntask 0 0\ntime 0 0 10\nfailure 0 0 0.0\n",
        )
        .unwrap()
    }

    #[test]
    fn insert_get_remove_and_generations() {
        let store = InstanceStore::new();
        assert!(store.is_empty());
        let first = store.insert("a", tiny_instance());
        let second = store.insert("b", tiny_instance());
        assert_eq!(store.len(), 2);
        assert_ne!(first.generation, second.generation);
        assert_eq!(store.get("a").unwrap().generation, first.generation);
        // Same-name replacement bumps the generation.
        let replaced = store.insert("a", tiny_instance());
        assert_ne!(replaced.generation, first.generation);
        assert_eq!(store.get("a").unwrap().generation, replaced.generation);
        // Snapshot is name-sorted.
        let names: Vec<_> = store.snapshot().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert!(store.get("a").is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn bytes_track_inserts_replacements_and_removals() {
        let store = InstanceStore::new();
        assert_eq!(store.stats().bytes, 0);
        let a = store.insert("a", tiny_instance());
        assert_eq!(store.stats().bytes, a.approx_bytes());
        store.insert("b", tiny_instance());
        assert_eq!(store.stats().bytes, 2 * a.approx_bytes());
        // Replacement does not double-charge.
        store.insert("a", tiny_instance());
        assert_eq!(store.stats().bytes, 2 * a.approx_bytes());
        store.remove("a");
        store.remove("b");
        assert_eq!(store.stats().bytes, 0);
    }

    #[test]
    fn the_byte_cap_evicts_least_recently_used_first() {
        let unit = {
            let probe = InstanceStore::new();
            probe.insert("probe", tiny_instance()).approx_bytes()
        };
        // Room for two tiny instances, not three.
        let store = InstanceStore::with_capacity(2 * unit);
        store.insert("a", tiny_instance());
        store.insert("b", tiny_instance());
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 0);
        // Touch `a` so `b` is the coldest, then overflow.
        assert!(store.get("a").is_some());
        store.insert("c", tiny_instance());
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 1);
        assert!(store.get("b").is_none(), "the cold entry must be evicted");
        assert!(store.get("a").is_some());
        assert!(store.get("c").is_some());
        // A cap smaller than one instance still keeps the newest load.
        let tight = InstanceStore::with_capacity(1);
        tight.insert("only", tiny_instance());
        assert_eq!(tight.len(), 1);
        tight.insert("next", tiny_instance());
        assert_eq!(tight.len(), 1);
        assert!(tight.get("next").is_some());
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let store = InstanceStore::new();
        store.insert("a", tiny_instance());
        assert!(store.get("a").is_some());
        assert!(store.get("a").is_some());
        assert!(store.get("ghost").is_none());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }
}
