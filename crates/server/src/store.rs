//! The resident instance store shared by every session.
//!
//! Instances are loaded once (via `mf_core::textio`) and stay resident for
//! the lifetime of the server; every session sees the same store. Each load
//! gets a process-unique **generation** number so session-scoped caches
//! (resident evaluator snapshots) can tell a reloaded instance from the one
//! they were built against without comparing instance contents.

use mf_core::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One resident instance.
#[derive(Debug)]
pub struct StoredInstance {
    /// Store name.
    pub name: String,
    /// Process-unique load generation (bumped on every `load`, including
    /// same-name replacements).
    pub generation: u64,
    /// The parsed instance.
    pub instance: Instance,
}

impl StoredInstance {
    /// Task count of the instance.
    pub fn tasks(&self) -> usize {
        self.instance.task_count()
    }

    /// Machine count of the instance.
    pub fn machines(&self) -> usize {
        self.instance.machine_count()
    }

    /// Task-type count of the instance.
    pub fn types(&self) -> usize {
        self.instance.application().type_count()
    }
}

/// A thread-safe name → instance map. `BTreeMap` keeps `list` responses in
/// deterministic (sorted) order without a per-call sort.
#[derive(Debug, Default)]
pub struct InstanceStore {
    instances: RwLock<BTreeMap<String, Arc<StoredInstance>>>,
    generations: AtomicU64,
}

impl InstanceStore {
    /// An empty store.
    pub fn new() -> Self {
        InstanceStore::default()
    }

    /// Inserts (or replaces) an instance under a name; returns the stored
    /// handle. Replacement is deliberate: reloading a name atomically swaps
    /// the instance every later request sees, and the fresh generation
    /// invalidates all session caches built against the old one.
    pub fn insert(&self, name: &str, instance: Instance) -> Arc<StoredInstance> {
        let stored = Arc::new(StoredInstance {
            name: name.to_string(),
            generation: self.generations.fetch_add(1, Ordering::Relaxed),
            instance,
        });
        self.instances
            .write()
            .expect("store lock poisoned")
            .insert(name.to_string(), Arc::clone(&stored));
        stored
    }

    /// The instance under a name, if loaded.
    pub fn get(&self, name: &str) -> Option<Arc<StoredInstance>> {
        self.instances
            .read()
            .expect("store lock poisoned")
            .get(name)
            .cloned()
    }

    /// Removes an instance; `true` if it was present.
    pub fn remove(&self, name: &str) -> bool {
        self.instances
            .write()
            .expect("store lock poisoned")
            .remove(name)
            .is_some()
    }

    /// Number of resident instances.
    pub fn len(&self) -> usize {
        self.instances.read().expect("store lock poisoned").len()
    }

    /// `true` when no instance is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All resident instances, sorted by name.
    pub fn snapshot(&self) -> Vec<Arc<StoredInstance>> {
        self.instances
            .read()
            .expect("store lock poisoned")
            .values()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_core::textio;

    fn tiny_instance() -> Instance {
        textio::instance_from_text(
            "tasks 1\nmachines 1\ntypes 1\ntask 0 0\ntime 0 0 10\nfailure 0 0 0.0\n",
        )
        .unwrap()
    }

    #[test]
    fn insert_get_remove_and_generations() {
        let store = InstanceStore::new();
        assert!(store.is_empty());
        let first = store.insert("a", tiny_instance());
        let second = store.insert("b", tiny_instance());
        assert_eq!(store.len(), 2);
        assert_ne!(first.generation, second.generation);
        assert_eq!(store.get("a").unwrap().generation, first.generation);
        // Same-name replacement bumps the generation.
        let replaced = store.insert("a", tiny_instance());
        assert_ne!(replaced.generation, first.generation);
        assert_eq!(store.get("a").unwrap().generation, replaced.generation);
        // Snapshot is name-sorted.
        let names: Vec<_> = store.snapshot().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert!(store.get("a").is_none());
        assert_eq!(store.len(), 1);
    }
}
