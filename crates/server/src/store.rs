//! The resident instance store shared by every session.
//!
//! Instances are loaded once (via `mf_core::textio`) and stay resident;
//! every session sees the same store. Each load gets a process-unique
//! **generation** number so session-scoped caches (resident evaluator
//! snapshots) can tell a reloaded instance from the one they were built
//! against without comparing instance contents.
//!
//! The store is **capped**: resident instances are charged their approximate
//! byte footprint, and when a load pushes the total past the cap the
//! least-recently-used instances are evicted (never the one just loaded).
//! Hits, misses and evictions are counted for the `stats` command, so a
//! long-running server's cache behavior is observable.

use mf_core::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Default byte budget of a store: 256 MiB of instance matrices — far more
/// than any paper-scale workload, low enough to bound a churn-heavy server.
pub const DEFAULT_STORE_BYTES: u64 = 256 << 20;

/// One resident instance.
#[derive(Debug)]
pub struct StoredInstance {
    /// Store name.
    pub name: String,
    /// Process-unique load generation (bumped on every `load`, including
    /// same-name replacements).
    pub generation: u64,
    /// The parsed instance.
    pub instance: Instance,
}

impl StoredInstance {
    /// Task count of the instance.
    pub fn tasks(&self) -> usize {
        self.instance.task_count()
    }

    /// Machine count of the instance.
    pub fn machines(&self) -> usize {
        self.instance.machine_count()
    }

    /// Task-type count of the instance.
    pub fn types(&self) -> usize {
        self.instance.application().type_count()
    }

    /// Approximate resident footprint: the `p×m` time matrix, the `n×m`
    /// failure matrix, the per-task vectors, and the application's
    /// structure vectors — successor and topological-order entries plus one
    /// 3-word `Vec` header per task's predecessor list and one word per
    /// in-forest edge — in 8-byte cells. The real heap layout differs by
    /// allocator slop; the cap only needs relative proportionality, and
    /// without the edge term a deep forest (many predecessor lists) would
    /// be undercounted relative to a chain of the same task count, skewing
    /// LRU eviction order.
    pub fn approx_bytes(&self) -> u64 {
        let n = self.tasks() as u64;
        let m = self.machines() as u64;
        let p = self.types() as u64;
        let app = self.instance.application();
        let edges: u64 = app
            .tasks()
            .map(|task| app.predecessors(task.id).len() as u64)
            .sum();
        8 * (p * m + n * m + 4 * n + m) + 8 * (5 * n + edges)
    }
}

/// One store slot: the shared instance plus its recency stamp (updated under
/// the read lock, hence atomic).
#[derive(Debug)]
struct StoreSlot {
    stored: Arc<StoredInstance>,
    last_used: AtomicU64,
}

/// Aggregated cache counters of a store (see [`InstanceStore::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Approximate bytes currently resident.
    pub bytes: u64,
    /// `get` calls that found their instance.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Instances evicted by the byte cap (explicit `unload`s not included).
    pub evictions: u64,
}

/// A thread-safe, LRU-capped name → instance map. `BTreeMap` keeps `list`
/// responses in deterministic (sorted) order without a per-call sort.
#[derive(Debug)]
pub struct InstanceStore {
    instances: RwLock<BTreeMap<String, StoreSlot>>,
    generations: AtomicU64,
    clock: AtomicU64,
    max_bytes: u64,
    bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for InstanceStore {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_STORE_BYTES)
    }
}

impl InstanceStore {
    /// An empty store with the default byte budget
    /// ([`DEFAULT_STORE_BYTES`]).
    pub fn new() -> Self {
        InstanceStore::default()
    }

    /// An empty store holding at most ~`max_bytes` of instance data (the
    /// most recently loaded instance is always kept, even above the cap).
    pub fn with_capacity(max_bytes: u64) -> Self {
        InstanceStore {
            instances: RwLock::new(BTreeMap::new()),
            generations: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            max_bytes,
            bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    #[inline]
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Inserts (or replaces) an instance under a name; returns the stored
    /// handle. Replacement is deliberate: reloading a name atomically swaps
    /// the instance every later request sees, and the fresh generation
    /// invalidates all session caches built against the old one. If the
    /// insert pushes the store past its byte cap, least-recently-used
    /// instances (never this one) are evicted.
    pub fn insert(&self, name: &str, instance: Instance) -> Arc<StoredInstance> {
        self.insert_tracked(name, instance).0
    }

    /// [`InstanceStore::insert`], additionally reporting the names the byte
    /// cap evicted — a durable engine journals each as an `unload`, so a
    /// replayed store converges to the same live set.
    pub fn insert_tracked(
        &self,
        name: &str,
        instance: Instance,
    ) -> (Arc<StoredInstance>, Vec<String>) {
        let generation = self.generations.fetch_add(1, Ordering::Relaxed);
        self.insert_with(name, instance, generation)
    }

    /// Re-inserts a journal-recovered instance under its **original**
    /// generation, so post-restart sessions and the keyed evaluate cache
    /// see exactly the pre-restart identity. The fresh-generation counter
    /// is pulled above the pinned value as a safety net; the replayer
    /// additionally reserves the journal's full high-water mark via
    /// [`InstanceStore::reserve_generations`].
    pub fn insert_pinned(
        &self,
        name: &str,
        instance: Instance,
        generation: u64,
    ) -> (Arc<StoredInstance>, Vec<String>) {
        self.reserve_generations(generation + 1);
        self.insert_with(name, instance, generation)
    }

    /// Raises the fresh-generation counter to at least `floor`. After a
    /// replay this is the journal's generation mark: every generation ever
    /// issued pre-restart is strictly below it, so no post-restart load can
    /// alias a pre-restart `(generation, fingerprint)` cache key — the
    /// collision a rebooting `AtomicU64::new(0)` used to allow.
    pub fn reserve_generations(&self, floor: u64) {
        self.generations.fetch_max(floor, Ordering::Relaxed);
    }

    fn insert_with(
        &self,
        name: &str,
        instance: Instance,
        generation: u64,
    ) -> (Arc<StoredInstance>, Vec<String>) {
        let stored = Arc::new(StoredInstance {
            name: name.to_string(),
            generation,
            instance,
        });
        let added = stored.approx_bytes();
        let mut evicted = Vec::new();
        let mut map = self.instances.write().expect("store lock poisoned");
        if let Some(previous) = map.insert(
            name.to_string(),
            StoreSlot {
                stored: Arc::clone(&stored),
                last_used: AtomicU64::new(self.tick()),
            },
        ) {
            self.bytes
                .fetch_sub(previous.stored.approx_bytes(), Ordering::Relaxed);
        }
        let mut total = self.bytes.fetch_add(added, Ordering::Relaxed) + added;
        // Evict coldest-first until back under the cap; the entry just
        // inserted is exempt so a single oversized instance still loads.
        while total > self.max_bytes && map.len() > 1 {
            let Some(coldest) = map
                .iter()
                .filter(|(key, _)| key.as_str() != name)
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            let slot = map.remove(&coldest).expect("key just observed");
            let freed = slot.stored.approx_bytes();
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            total -= freed;
            evicted.push(coldest);
        }
        (stored, evicted)
    }

    /// The instance under a name, if loaded (refreshes its recency and
    /// counts the hit/miss).
    pub fn get(&self, name: &str) -> Option<Arc<StoredInstance>> {
        let map = self.instances.read().expect("store lock poisoned");
        match map.get(name) {
            Some(slot) => {
                slot.last_used.store(self.tick(), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.stored))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Removes an instance; `true` if it was present.
    pub fn remove(&self, name: &str) -> bool {
        let mut map = self.instances.write().expect("store lock poisoned");
        match map.remove(name) {
            Some(slot) => {
                self.bytes
                    .fetch_sub(slot.stored.approx_bytes(), Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Number of resident instances.
    pub fn len(&self) -> usize {
        self.instances.read().expect("store lock poisoned").len()
    }

    /// `true` when no instance is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All resident instances, sorted by name.
    pub fn snapshot(&self) -> Vec<Arc<StoredInstance>> {
        self.instances
            .read()
            .expect("store lock poisoned")
            .values()
            .map(|slot| Arc::clone(&slot.stored))
            .collect()
    }

    /// The cache counters (bytes resident, hits, misses, evictions).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            bytes: self.bytes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_core::textio;

    fn tiny_instance() -> Instance {
        textio::instance_from_text(
            "tasks 1\nmachines 1\ntypes 1\ntask 0 0\ntime 0 0 10\nfailure 0 0 0.0\n",
        )
        .unwrap()
    }

    #[test]
    fn insert_get_remove_and_generations() {
        let store = InstanceStore::new();
        assert!(store.is_empty());
        let first = store.insert("a", tiny_instance());
        let second = store.insert("b", tiny_instance());
        assert_eq!(store.len(), 2);
        assert_ne!(first.generation, second.generation);
        assert_eq!(store.get("a").unwrap().generation, first.generation);
        // Same-name replacement bumps the generation.
        let replaced = store.insert("a", tiny_instance());
        assert_ne!(replaced.generation, first.generation);
        assert_eq!(store.get("a").unwrap().generation, replaced.generation);
        // Snapshot is name-sorted.
        let names: Vec<_> = store.snapshot().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert!(store.get("a").is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn bytes_track_inserts_replacements_and_removals() {
        let store = InstanceStore::new();
        assert_eq!(store.stats().bytes, 0);
        let a = store.insert("a", tiny_instance());
        assert_eq!(store.stats().bytes, a.approx_bytes());
        store.insert("b", tiny_instance());
        assert_eq!(store.stats().bytes, 2 * a.approx_bytes());
        // Replacement does not double-charge.
        store.insert("a", tiny_instance());
        assert_eq!(store.stats().bytes, 2 * a.approx_bytes());
        store.remove("a");
        store.remove("b");
        assert_eq!(store.stats().bytes, 0);
    }

    #[test]
    fn the_byte_cap_evicts_least_recently_used_first() {
        let unit = {
            let probe = InstanceStore::new();
            probe.insert("probe", tiny_instance()).approx_bytes()
        };
        // Room for two tiny instances, not three.
        let store = InstanceStore::with_capacity(2 * unit);
        store.insert("a", tiny_instance());
        store.insert("b", tiny_instance());
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 0);
        // Touch `a` so `b` is the coldest, then overflow.
        assert!(store.get("a").is_some());
        store.insert("c", tiny_instance());
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 1);
        assert!(store.get("b").is_none(), "the cold entry must be evicted");
        assert!(store.get("a").is_some());
        assert!(store.get("c").is_some());
        // A cap smaller than one instance still keeps the newest load.
        let tight = InstanceStore::with_capacity(1);
        tight.insert("only", tiny_instance());
        assert_eq!(tight.len(), 1);
        tight.insert("next", tiny_instance());
        assert_eq!(tight.len(), 1);
        assert!(tight.get("next").is_some());
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let store = InstanceStore::new();
        store.insert("a", tiny_instance());
        assert!(store.get("a").is_some());
        assert!(store.get("a").is_some());
        assert!(store.get("ghost").is_none());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    /// `n` tasks on 1 machine / 1 type, either chained (`n-1` in-forest
    /// edges) or fully independent (0 edges).
    fn structured_instance(n: usize, chained: bool) -> Instance {
        let mut text = format!("tasks {n}\nmachines 1\ntypes 1\n");
        for i in 0..n {
            if chained && i + 1 < n {
                text.push_str(&format!("task {i} 0 successor {}\n", i + 1));
            } else {
                text.push_str(&format!("task {i} 0\n"));
            }
        }
        text.push_str("time 0 0 10\n");
        for i in 0..n {
            text.push_str(&format!("failure {i} 0 0.0\n"));
        }
        textio::instance_from_text(&text).unwrap()
    }

    /// The footprint estimate must charge the application's structure
    /// vectors: a chain of `n` tasks carries `n-1` predecessor edges an
    /// edge-free forest of the same shape doesn't, and the estimate must
    /// grow by exactly one 8-byte cell per edge — otherwise LRU eviction
    /// order is skewed against structure-light instances.
    #[test]
    fn approx_bytes_charges_structure_edges_chain_vs_forest() {
        let n = 24;
        let store = InstanceStore::new();
        let chain = store.insert("chain", structured_instance(n, true));
        let forest = store.insert("forest", structured_instance(n, false));
        assert_eq!(
            chain.approx_bytes() - forest.approx_bytes(),
            8 * (n as u64 - 1),
            "one 8-byte cell per in-forest edge"
        );
        // The matrices alone (the pre-fix formula) undercount both.
        let matrices_only = 8 * ((1 + n as u64) + 4 * n as u64 + 1);
        assert!(forest.approx_bytes() > matrices_only);
    }

    /// The restart-generation bugfix: a store rebuilt from a journal
    /// (pinned generations + reserved high-water mark) never re-issues a
    /// generation, even for generations whose instances were unloaded
    /// before the crash.
    #[test]
    fn a_replayed_store_never_reissues_a_generation() {
        let store = InstanceStore::new();
        let mut issued = Vec::new();
        for name in ["a", "b", "c"] {
            issued.push(store.insert(name, tiny_instance()).generation);
        }
        assert_eq!(issued, vec![0, 1, 2]);
        store.remove("c"); // generation 2 is dead but was issued

        // Replay in arbitrary order with the original generations pinned,
        // then reserve the journal's mark (one above the highest issued).
        let replayed = InstanceStore::new();
        replayed.insert_pinned("b", tiny_instance(), 1);
        replayed.insert_pinned("a", tiny_instance(), 0);
        replayed.reserve_generations(3);
        assert_eq!(replayed.get("a").unwrap().generation, 0);
        assert_eq!(replayed.get("b").unwrap().generation, 1);
        let fresh = replayed.insert("d", tiny_instance());
        assert_eq!(
            fresh.generation, 3,
            "a fresh load must start above the mark (2 was issued pre-restart)"
        );
        let replaced = replayed.insert("a", tiny_instance());
        assert_eq!(replaced.generation, 4, "replacements keep climbing");
        // Even without an explicit reserve, pinning alone keeps the counter
        // above every pinned generation.
        let pinned_only = InstanceStore::new();
        pinned_only.insert_pinned("x", tiny_instance(), 7);
        assert_eq!(pinned_only.insert("y", tiny_instance()).generation, 8);
    }

    /// Racing loaders churning past the byte cap: counters stay consistent
    /// (hits + misses = gets, bytes match the resident set and respect the
    /// cap once the dust settles) and an insert never evicts its own —
    /// newest — entry.
    #[test]
    fn concurrent_load_churn_keeps_counters_consistent() {
        let unit = {
            let probe = InstanceStore::new();
            probe.insert("probe", tiny_instance()).approx_bytes()
        };
        let store = InstanceStore::with_capacity(3 * unit);
        let threads = 4;
        let inserts_per_thread = 32;
        let (gets, evicted_total) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let store = &store;
                    scope.spawn(move || {
                        let mut gets = 0u64;
                        let mut evicted = 0u64;
                        for i in 0..inserts_per_thread {
                            let name = format!("t{t}-i{i}");
                            let (stored, gone) = store.insert_tracked(&name, tiny_instance());
                            assert_eq!(stored.name, name);
                            assert!(
                                !gone.contains(&name),
                                "an insert must never evict its own (newest) entry"
                            );
                            evicted += gone.len() as u64;
                            // Lookups race the other threads' evictions; any
                            // outcome is fine, the accounting must hold.
                            store.get(&name);
                            store.get(&format!("t{}-i{i}", (t + 1) % threads));
                            gets += 2;
                        }
                        (gets, evicted)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("churn thread panicked"))
                .fold((0u64, 0u64), |(g, e), (dg, de)| (g + dg, e + de))
        });
        let stats = store.stats();
        assert_eq!(stats.hits + stats.misses, gets);
        assert_eq!(stats.evictions, evicted_total);
        assert_eq!(
            store.len() as u64 + evicted_total,
            (threads * inserts_per_thread) as u64,
            "every distinct name is either resident or was evicted exactly once"
        );
        assert!(
            stats.bytes <= 3 * unit,
            "bytes ({}) must respect the cap ({}) once every load returned",
            stats.bytes,
            3 * unit
        );
        let resident: u64 = store
            .snapshot()
            .iter()
            .map(|stored| stored.approx_bytes())
            .sum();
        assert_eq!(
            stats.bytes, resident,
            "byte counter matches the resident set"
        );
    }
}
