//! Concurrency acceptance: the server answers ≥ 2 simultaneous sessions over
//! the shared solver pool, and concurrency never changes the numbers —
//! every concurrent answer is bit-identical to the same query asked alone.
//!
//! Written against the typed [`Client`] API: each call builds the request,
//! ships it, and destructures the matching answer, so the assertions compare
//! structured values instead of wire text.

use mf_core::textio;
use mf_server::client::Solution;
use mf_server::{Client, ClientError, ErrorCode, Probe, Server, SolveMethod};
use mf_sim::{GeneratorConfig, InstanceGenerator};
use std::sync::Arc;

fn instance_text(seed: u64) -> String {
    let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(10, 4, 2))
        .generate(seed)
        .unwrap();
    textio::instance_to_text(&instance)
}

/// One session's workload: load a private instance, solve it with a
/// heuristic and with the portfolio, and return both solutions.
fn session_workload(addr: std::net::SocketAddr, name: &str, seed: u64) -> (Solution, Solution) {
    let mut client = Client::connect(addr).unwrap();
    let shape = client.load(name, &instance_text(seed)).unwrap();
    assert_eq!(shape, (10, 4, 2));
    let heuristic = client
        .solve(name, SolveMethod::Heuristic("TS-H2".into()), None)
        .unwrap();
    let portfolio = client.solve(name, SolveMethod::Portfolio, None).unwrap();
    (heuristic, portfolio)
}

fn assert_bit_identical(left: &Solution, right: &Solution) {
    assert_eq!(left.label, right.label);
    assert_eq!(left.period.to_bits(), right.period.to_bits());
    assert_eq!(left.mapping, right.mapping);
}

#[test]
fn two_concurrent_sessions_share_the_pool_and_stay_bit_identical() {
    let server = Server::bind("127.0.0.1:0", 0).unwrap();
    let addr = server.local_addr().unwrap();
    let engine = Arc::clone(server.engine());
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // Serial reference answers, asked before any concurrency.
    let reference_a = session_workload(addr, "ref-a", 11);
    let reference_b = session_workload(addr, "ref-b", 22);

    // The same two workloads, raced on two live sessions at once (distinct
    // store names so the sessions interleave on the shared store and pool
    // without replacing each other's instances).
    let worker_a = std::thread::spawn(move || session_workload(addr, "conc-a", 11));
    let worker_b = std::thread::spawn(move || session_workload(addr, "conc-b", 22));
    let concurrent_a = worker_a.join().unwrap();
    let concurrent_b = worker_b.join().unwrap();
    assert_bit_identical(&concurrent_a.0, &reference_a.0);
    assert_bit_identical(&concurrent_a.1, &reference_a.1);
    assert_bit_identical(&concurrent_b.0, &reference_b.0);
    assert_bit_identical(&concurrent_b.1, &reference_b.1);

    // Both sessions' instances are resident in the one shared store.
    let mut client = Client::connect(addr).unwrap();
    let names: Vec<String> = client
        .list()
        .unwrap()
        .into_iter()
        .map(|info| info.name)
        .collect();
    assert_eq!(names, vec!["conc-a", "conc-b", "ref-a", "ref-b"]);

    // The engine counted all five sessions (4 workloads + this one).
    let stats = engine.stats();
    let sessions = stats.iter().find(|(k, _)| k == "sessions").unwrap().1;
    assert_eq!(sessions, 5);

    client.shutdown().unwrap();
    drop(client);
    server_thread.join().unwrap();
}

/// Sessions are isolated where they must be: resident whatif state is
/// per-session, while the store is shared.
#[test]
fn whatif_state_is_session_scoped() {
    let server = Server::bind("127.0.0.1:0", 1).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut first = Client::connect(addr).unwrap();
    let mut second = Client::connect(addr).unwrap();
    first.load("shared", &instance_text(5)).unwrap();
    // First session solves — it gains resident whatif state.
    first
        .solve("shared", SolveMethod::Heuristic("H4w".into()), None)
        .unwrap();
    let probe = Probe::Move {
        task: 0,
        machine: 1,
    };
    let (period, _) = first.what_if("shared", probe).unwrap();
    assert!(period.is_finite());
    // Second session sees the shared instance but has no resident state.
    let denied = second.what_if("shared", probe).unwrap_err();
    assert!(
        matches!(
            denied,
            ClientError::Server {
                code: ErrorCode::NoResidentState,
                ..
            }
        ),
        "{denied}"
    );
    second.shutdown().unwrap();
    drop(first);
    drop(second);
    server_thread.join().unwrap();
}
