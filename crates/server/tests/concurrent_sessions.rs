//! Concurrency acceptance: the server answers ≥ 2 simultaneous sessions over
//! the shared solver pool, and concurrency never changes the numbers —
//! every concurrent answer is bit-identical to the same query asked alone.

use mf_core::textio;
use mf_server::{Client, Request, Response, Server, SolveMethod};
use mf_sim::{GeneratorConfig, InstanceGenerator};
use std::sync::Arc;

fn instance_text(seed: u64) -> String {
    let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(10, 4, 2))
        .generate(seed)
        .unwrap();
    textio::instance_to_text(&instance)
}

fn load_request(name: &str, seed: u64) -> Request {
    Request::Load {
        name: name.into(),
        payload: mf_server::text_payload(&instance_text(seed)),
    }
}

fn solve_request(name: &str, method: SolveMethod) -> Request {
    Request::Solve {
        name: name.into(),
        method,
        seed: None,
    }
}

/// One session's workload: load a private instance, solve it with a
/// heuristic and with the portfolio, and return both responses.
fn session_workload(addr: std::net::SocketAddr, name: &str, seed: u64) -> (Response, Response) {
    let mut client = Client::connect(addr).unwrap();
    let loaded = client.request(&load_request(name, seed)).unwrap();
    assert!(matches!(loaded, Response::Loaded { .. }), "{loaded:?}");
    let heuristic = client
        .request(&solve_request(name, SolveMethod::Heuristic("TS-H2".into())))
        .unwrap();
    let portfolio = client
        .request(&solve_request(name, SolveMethod::Portfolio))
        .unwrap();
    (heuristic, portfolio)
}

#[test]
fn two_concurrent_sessions_share_the_pool_and_stay_bit_identical() {
    let server = Server::bind("127.0.0.1:0", 0).unwrap();
    let addr = server.local_addr().unwrap();
    let engine = Arc::clone(server.engine());
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // Serial reference answers, asked before any concurrency.
    let reference_a = session_workload(addr, "ref-a", 11);
    let reference_b = session_workload(addr, "ref-b", 22);

    // The same two workloads, raced on two live sessions at once (distinct
    // store names so the sessions interleave on the shared store and pool
    // without replacing each other's instances).
    let worker_a = std::thread::spawn(move || session_workload(addr, "conc-a", 11));
    let worker_b = std::thread::spawn(move || session_workload(addr, "conc-b", 22));
    let concurrent_a = worker_a.join().unwrap();
    let concurrent_b = worker_b.join().unwrap();
    assert_eq!(concurrent_a, reference_a);
    assert_eq!(concurrent_b, reference_b);

    // Both sessions' instances are resident in the one shared store.
    let mut client = Client::connect(addr).unwrap();
    let Response::List(entries) = client.request(&Request::List).unwrap() else {
        panic!("list failed");
    };
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, vec!["conc-a", "conc-b", "ref-a", "ref-b"]);

    // The engine counted all five sessions (4 workloads + this one).
    let stats = engine.stats();
    let sessions = stats.iter().find(|(k, _)| k == "sessions").unwrap().1;
    assert_eq!(sessions, 5);

    let bye = client.request(&Request::Shutdown).unwrap();
    assert_eq!(bye, Response::Shutdown);
    drop(client);
    server_thread.join().unwrap();
}

/// Sessions are isolated where they must be: resident whatif state is
/// per-session, while the store is shared.
#[test]
fn whatif_state_is_session_scoped() {
    let server = Server::bind("127.0.0.1:0", 1).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut first = Client::connect(addr).unwrap();
    let mut second = Client::connect(addr).unwrap();
    assert!(matches!(
        first.request(&load_request("shared", 5)).unwrap(),
        Response::Loaded { .. }
    ));
    // First session solves — it gains resident whatif state.
    assert!(matches!(
        first
            .request(&solve_request(
                "shared",
                SolveMethod::Heuristic("H4w".into())
            ))
            .unwrap(),
        Response::Solved { .. }
    ));
    let probe = Request::WhatIf {
        name: "shared".into(),
        probe: mf_server::Probe::Move {
            task: 0,
            machine: 1,
        },
    };
    assert!(matches!(
        first.request(&probe).unwrap(),
        Response::WhatIf { .. }
    ));
    // Second session sees the shared instance but has no resident state.
    let denied = second.request(&probe).unwrap();
    assert!(
        matches!(
            denied,
            Response::Error {
                code: mf_server::ErrorCode::NoResidentState,
                ..
            }
        ),
        "{denied:?}"
    );
    assert_eq!(
        second.request(&Request::Shutdown).unwrap(),
        Response::Shutdown
    );
    drop(first);
    drop(second);
    server_thread.join().unwrap();
}
