//! The golden stdio transcript: a scripted load / list / solve / evaluate /
//! whatif / portfolio / error / stats / shutdown session whose byte-exact
//! output is committed under `tests/golden/`.
//!
//! The same pair of files drives the CI smoke step, which pipes
//! `smoke_session.in` through the real `microfactory serve --stdio` binary
//! and diffs against `smoke_session.out` — so the protocol, the dispatch
//! layer and the CLI wiring cannot drift apart silently. Every answer in the
//! transcript is deterministic: heuristics use their fixed default seed, and
//! the portfolio outcome is bit-identical for every thread count.
//!
//! Regenerate after an intentional protocol change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p mf-server --test golden_transcript
//! ```

use mf_server::{serve_stdio, Engine, Router};

#[test]
fn stdio_session_matches_the_golden_transcript() {
    let input = include_str!("golden/smoke_session.in");
    let expected_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/smoke_session.out"
    );
    let engine = Engine::new(1);
    let mut output = Vec::new();
    serve_stdio(&engine, input.as_bytes(), &mut output).unwrap();
    let actual = String::from_utf8(output).expect("protocol output is UTF-8");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(expected_path, &actual).expect("write golden transcript");
        return;
    }
    let expected = std::fs::read_to_string(expected_path).expect("golden transcript exists");
    assert_eq!(
        actual, expected,
        "stdio transcript drifted from tests/golden/smoke_session.out; \
         re-run with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// The transcript must be independent of the engine's thread count — the
/// portfolio determinism guarantee, observed end-to-end at the protocol
/// layer.
#[test]
fn transcript_is_thread_count_independent() {
    let input = include_str!("golden/smoke_session.in");
    let mut outputs = Vec::new();
    for threads in [1usize, 4] {
        let engine = Engine::new(threads);
        let mut output = Vec::new();
        serve_stdio(&engine, input.as_bytes(), &mut output).unwrap();
        outputs.push(output);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "thread count changed the protocol transcript"
    );
}

/// The `mf-proto v2` golden transcript: hello negotiation, a `batch 5`
/// envelope mixing solves, cached evaluates, an in-envelope error and a
/// whatif, a repeated evaluate served from the keyed cache, and the extended
/// v2 stats block. Deliberately free of `status-export` so the very same
/// bytes come out of a sharded router at any worker count (pinned below).
#[test]
fn batched_v2_session_matches_the_golden_transcript() {
    let input = include_str!("golden/batched_session.in");
    let expected_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/batched_session.out"
    );
    let engine = Engine::new(1);
    let mut output = Vec::new();
    serve_stdio(&engine, input.as_bytes(), &mut output).unwrap();
    let actual = String::from_utf8(output).expect("protocol output is UTF-8");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(expected_path, &actual).expect("write golden transcript");
        return;
    }
    let expected = std::fs::read_to_string(expected_path).expect("golden transcript exists");
    assert_eq!(
        actual, expected,
        "v2 transcript drifted from tests/golden/batched_session.out; \
         re-run with UPDATE_GOLDEN=1 if the change is intentional"
    );
    // The repeated evaluate and the in-batch evaluate of the solved mapping
    // are the two keyed-cache hits the transcript must show.
    assert!(
        actual.contains("stat evaluate-cache-hits 2"),
        "expected two cache hits in the v2 stats block:\n{actual}"
    );
    assert!(actual.contains("stat evaluator-builds 2"), "{actual}");
}

/// The `mf-proto v3` anytime golden transcript: hello negotiation, one
/// budgeted + seeded anytime solve and one default-config anytime solve of
/// the same instance, each answered by a streaming `ok solve-anytime` block
/// (monotone gap reports: seed heuristic → LNS slice → branch-and-bound),
/// and the v3 stats block with the anytime/B&B/LP counters. Steps are
/// evaluator calls and B&B nodes — never wall clock — so every byte is
/// deterministic; the CI smoke step pipes the same file through the real
/// `microfactory serve --stdio` binary.
#[test]
fn anytime_v3_session_matches_the_golden_transcript() {
    let input = include_str!("golden/anytime_session.in");
    let expected_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/anytime_session.out"
    );
    let engine = Engine::new(1);
    let mut output = Vec::new();
    serve_stdio(&engine, input.as_bytes(), &mut output).unwrap();
    let actual = String::from_utf8(output).expect("protocol output is UTF-8");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(expected_path, &actual).expect("write golden transcript");
        return;
    }
    let expected = std::fs::read_to_string(expected_path).expect("golden transcript exists");
    assert_eq!(
        actual, expected,
        "v3 anytime transcript drifted from tests/golden/anytime_session.out; \
         re-run with UPDATE_GOLDEN=1 if the change is intentional"
    );
    // The stream must open with the seed incumbent at step 0 and close each
    // solve with a proven report (gap 0 within the default step budget on
    // this shape), and the v3 counters must record both solves.
    assert!(actual.contains("gap seed 0 "), "{actual}");
    assert!(actual.contains("stat solves-anytime 2"), "{actual}");
    assert!(actual.contains("stat anytime-proven 2"), "{actual}");
}

/// All three golden scripts produce the same bytes from a plain engine and
/// from routers of 1, 2 and 4 workers — the sharded tier is a pure
/// deployment choice, never a protocol fork.
#[test]
fn transcripts_are_worker_count_independent() {
    for input in [
        include_str!("golden/smoke_session.in"),
        include_str!("golden/batched_session.in"),
        include_str!("golden/anytime_session.in"),
    ] {
        let mut reference = Vec::new();
        serve_stdio(&Engine::new(1), input.as_bytes(), &mut reference).unwrap();
        for workers in [1usize, 2, 4] {
            let router = Router::new(workers, 1);
            let mut output = Vec::new();
            serve_stdio(&router, input.as_bytes(), &mut output).unwrap();
            assert_eq!(
                String::from_utf8(output).unwrap(),
                String::from_utf8(reference.clone()).unwrap(),
                "{workers} router workers changed the transcript"
            );
        }
    }
}
