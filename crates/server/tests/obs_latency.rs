//! Deterministic request-latency observability: with an injected
//! [`ManualClock`] every measured duration — and therefore every histogram
//! bucket, quantile, trace span and slow-request record — is an exact,
//! pinnable value. The router test pins the acceptance invariant of the
//! sharded tier: the router's exposed histograms are the **bucket-wise sum**
//! of its workers' histograms, for any worker count.

use mf_obs::{events_from_text, Histogram, ManualClock, SharedTraceWriter, TraceEvent};
use mf_server::proto::{text_payload, Request, Response};
use mf_server::{Engine, ObsConfig, Router, TRACKED_COMMANDS};
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("mf-obs-latency-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn instance_text(seed: u64) -> String {
    let instance = mf_sim::InstanceGenerator::new(mf_sim::GeneratorConfig::paper_standard(6, 3, 2))
        .generate(seed)
        .unwrap();
    mf_core::textio::instance_to_text(&instance)
}

fn load(name: &str, seed: u64) -> Request {
    Request::Load {
        name: name.into(),
        payload: text_payload(&instance_text(seed)),
    }
}

fn get<'h>(
    histograms: &'h [(String, mf_obs::HistogramSnapshot)],
    command: &str,
) -> &'h mf_obs::HistogramSnapshot {
    &histograms
        .iter()
        .find(|(name, _)| name == command)
        .unwrap_or_else(|| panic!("no {command} histogram"))
        .1
}

fn expected(samples_ns: &[u64]) -> mf_obs::HistogramSnapshot {
    let histogram = Histogram::new();
    for &sample in samples_ns {
        histogram.record(sample);
    }
    histogram.snapshot()
}

/// A ticking manual clock advances by its step on **every** reading, and a
/// plain dispatch reads it exactly twice (start, end) — so every non-batch
/// request measures exactly one step, pinning the whole histogram.
#[test]
fn manual_clock_pins_every_latency_bucket() {
    let clock = Arc::new(ManualClock::ticking(1000));
    let engine = Engine::with_observability(1, ObsConfig::new().with_clock(clock));
    let mut session = engine.begin_session();
    engine.dispatch(&mut session, Request::Hello { requested: 2 });
    engine.dispatch(&mut session, load("alpha", 1));
    engine.dispatch(&mut session, Request::List);
    engine.dispatch(&mut session, Request::List);
    engine.dispatch(&mut session, Request::Stats);

    let histograms = engine.histograms();
    let order: Vec<&str> = histograms.iter().map(|(name, _)| name.as_str()).collect();
    assert_eq!(order, TRACKED_COMMANDS, "fixed exposition order");
    assert_eq!(get(&histograms, "hello"), &expected(&[1000]));
    assert_eq!(get(&histograms, "load"), &expected(&[1000]));
    assert_eq!(get(&histograms, "list"), &expected(&[1000, 1000]));
    assert_eq!(get(&histograms, "stats"), &expected(&[1000]));
    for untouched in [
        "batch",
        "status-export",
        "unload",
        "evaluate",
        "whatif",
        "solve",
        "shutdown",
    ] {
        assert_eq!(get(&histograms, untouched).count(), 0, "{untouched}");
    }
    let list = get(&histograms, "list");
    assert_eq!(list.sum_ns(), 2000);
    assert_eq!(list.max_ns(), 1000);
    assert_eq!(list.p50_ns(), 1000);
    assert_eq!(list.p99_ns(), 1000);
}

/// A `batch` envelope times each item (two clock readings apiece) plus its
/// own start/end readings: `N` items measure `(2N + 1)` steps exactly.
#[test]
fn batch_envelope_latency_includes_its_items() {
    let clock = Arc::new(ManualClock::ticking(1000));
    let engine = Engine::with_observability(1, ObsConfig::new().with_clock(clock));
    let mut session = engine.begin_session();
    engine.dispatch(&mut session, Request::Hello { requested: 2 });
    engine.dispatch(&mut session, load("alpha", 1));
    let items = vec![
        Request::Unload {
            name: "alpha".into(),
        },
        Request::List, // not batchable: answers an error, still timed
    ];
    engine.dispatch(&mut session, Request::Batch(items));

    let histograms = engine.histograms();
    assert_eq!(get(&histograms, "batch"), &expected(&[5000]));
    assert_eq!(get(&histograms, "unload"), &expected(&[1000]));
    assert_eq!(get(&histograms, "list"), &expected(&[1000]));
}

/// The acceptance invariant of the sharded tier, pinned: the histograms a
/// router exposes (and publishes through `status-export`) are exactly the
/// bucket-wise sum of its workers' histograms.
#[test]
fn router_histograms_are_the_bucketwise_sum_of_workers() {
    let clock = Arc::new(ManualClock::ticking(1000));
    let router = Router::with_observability(3, 1, ObsConfig::new().with_clock(clock));
    let mut session = router.begin_session();
    for k in 0..8 {
        let response = router.dispatch(&mut session, load(&format!("inst{k}"), k));
        assert!(matches!(response, Response::Loaded { .. }));
    }
    let response = router.dispatch(
        &mut session,
        Request::Unload {
            name: "inst3".into(),
        },
    );
    assert!(matches!(response, Response::Unloaded { .. }));

    // Hand-merge the worker snapshots bucket-wise...
    let mut summed = router.engines()[0].histograms();
    for worker in &router.engines()[1..] {
        for (total, (key, snapshot)) in summed.iter_mut().zip(worker.histograms()) {
            assert_eq!(total.0, key);
            total.1.merge(&snapshot);
        }
    }
    // ...and the router must expose exactly that sum, everywhere it
    // publishes histograms.
    assert_eq!(router.histograms(), summed);
    assert_eq!(router.status_report().histograms, summed);
    assert_eq!(get(&summed, "load"), &expected(&[1000; 8]));
    assert_eq!(get(&summed, "unload"), &expected(&[1000]));
    // The workers genuinely share the work: no single worker saw all loads.
    assert!(router
        .engines()
        .iter()
        .all(|worker| get(&worker.histograms(), "load").count() < 8));
}

/// With a trace writer attached every request appends a span, and requests
/// past the slow threshold also append a slow record and hit the stderr
/// log. The trace file round-trips through the `mf-trace v1` parser, and
/// the responses are byte-identical to an untraced engine's.
#[test]
fn traced_requests_append_spans_and_slow_records() {
    let dir = TempDir::new("spans");
    let trace_path = dir.0.join("server.mf-trace");
    let trace = Arc::new(SharedTraceWriter::create(&trace_path).unwrap());
    let clock = Arc::new(ManualClock::ticking(1000));
    let obs = ObsConfig::new()
        .with_clock(clock)
        .with_trace(Arc::clone(&trace))
        .with_slow_threshold_ns(1000); // every 1000 ns request is "slow"
    let engine = Engine::with_observability(1, obs);
    let plain = Engine::new(1);

    let mut session = engine.begin_session();
    let mut plain_session = plain.begin_session();
    for request in [
        Request::Hello { requested: 2 },
        load("alpha", 1),
        Request::List,
    ] {
        let traced = engine.dispatch(&mut session, request.clone());
        let untraced = plain.dispatch(&mut plain_session, request);
        assert_eq!(traced, untraced, "tracing never changes a response");
    }
    trace.finish().unwrap();

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let events = events_from_text(&text).unwrap();
    let spans: Vec<(&str, u64, u64)> = events
        .iter()
        .filter_map(|event| match event {
            TraceEvent::Span {
                name,
                start_ns,
                duration_ns,
            } => Some((name.as_str(), *start_ns, *duration_ns)),
            _ => None,
        })
        .collect();
    // Start marks advance by 1000 per reading: request k starts at 2k·1000
    // plus the slow-check readings' drift — the durations are what's pinned.
    assert_eq!(spans.len(), 3);
    assert_eq!(spans[0].0, "hello");
    assert_eq!(spans[1].0, "load");
    assert_eq!(spans[2].0, "list");
    assert!(spans.iter().all(|&(_, _, duration)| duration == 1000));
    let slow: Vec<&str> = events
        .iter()
        .filter_map(|event| match event {
            TraceEvent::Slow { command, .. } => Some(command.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(slow, ["hello", "load", "list"], "all at the threshold");
}
