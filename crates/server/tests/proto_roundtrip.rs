//! Property tests of `mf-proto v1`, mirroring `textio`'s round-trip style:
//! every request/response value survives parse→write→parse **byte-
//! identically**, across a seeded sweep of generated values, and malformed
//! or truncated input always produces a typed [`ProtoError`], never a panic.

use mf_core::splitmix64;
use mf_server::{
    request_from_text, request_to_text, response_from_text, response_to_text, ErrorCode, GapReport,
    InstanceInfo, Probe, ProtoError, ProtoVersion, Request, Response, SolveMethod,
};

/// A tiny deterministic value generator over a SplitMix64 stream.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    fn index(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    fn name(&mut self) -> String {
        const ALPHABET: &[u8] = b"abcXYZ019._-#";
        let length = 1 + self.index(12);
        (0..length)
            .map(|_| ALPHABET[self.index(ALPHABET.len())] as char)
            .collect()
    }

    fn float(&mut self) -> f64 {
        // A mix of awkward magnitudes, all positive and finite like periods.
        match self.index(5) {
            0 => f64::MIN_POSITIVE,
            1 => 1.0 / 3.0,
            2 => (self.next() % 1_000_000) as f64 / 7.0,
            3 => 1e300,
            _ => f64::from_bits(0x3FF0_0000_0000_0000 | (self.next() & 0xF_FFFF_FFFF_FFFF)),
        }
    }

    fn payload(&mut self) -> Vec<String> {
        (0..self.index(6))
            .map(|_| match self.index(4) {
                0 => String::new(),
                1 => "# comment with spaces".to_string(),
                2 => format!("task {} {}", self.index(100), self.index(8)),
                _ => format!("  indented {}", self.next()),
            })
            .collect()
    }

    /// A request that is valid as a batch item (single requests, no
    /// envelopes).
    fn flat_request(&mut self) -> Request {
        match self.index(8) {
            0 => Request::Load {
                name: self.name(),
                payload: self.payload(),
            },
            1 => Request::Unload { name: self.name() },
            2 => Request::List,
            3 => Request::Evaluate {
                name: self.name(),
                payload: self.payload(),
            },
            4 => Request::WhatIf {
                name: self.name(),
                probe: if self.index(2) == 0 {
                    Probe::Move {
                        task: self.index(1000),
                        machine: self.index(64),
                    }
                } else {
                    Probe::Swap {
                        a: self.index(1000),
                        b: self.index(1000),
                    }
                },
            },
            5 => Request::Solve {
                name: self.name(),
                method: match self.index(3) {
                    0 => SolveMethod::Heuristic(self.name()),
                    1 => SolveMethod::Portfolio,
                    _ => SolveMethod::Anytime {
                        budget: if self.index(2) == 0 {
                            None
                        } else {
                            Some(self.next())
                        },
                    },
                },
                seed: if self.index(2) == 0 {
                    None
                } else {
                    Some(self.next())
                },
            },
            6 => Request::Stats,
            _ => Request::Shutdown,
        }
    }

    fn request(&mut self) -> Request {
        match self.index(11) {
            // `v0` is not a negotiable version, so the writer never emits it.
            8 => Request::Hello {
                requested: (self.next() % 1000) as u32 + 1,
            },
            9 => Request::StatusExport,
            10 => {
                let items = (0..self.index(5))
                    .map(|_| loop {
                        let item = self.flat_request();
                        // Envelopes carry only instance-keyed requests.
                        if item.instance_name().is_some() {
                            break item;
                        }
                    })
                    .collect();
                Request::Batch(items)
            }
            _ => self.flat_request(),
        }
    }

    fn gap_report(&mut self) -> GapReport {
        GapReport {
            phase: ["seed", "lns", "bnb"][self.index(3)].to_string(),
            steps: self.next(),
            period: self.float(),
            bound: self.float(),
            proven: self.index(2) == 0,
        }
    }

    /// A response that is valid as a batch item (no envelopes).
    fn flat_response(&mut self) -> Response {
        match self.index(10) {
            0 => Response::Loaded {
                name: self.name(),
                tasks: self.index(1000),
                machines: self.index(100),
                types: self.index(10),
            },
            1 => Response::Unloaded { name: self.name() },
            2 => Response::List(
                (0..self.index(4))
                    .map(|_| InstanceInfo {
                        name: self.name(),
                        tasks: self.index(1000),
                        machines: self.index(100),
                        types: self.index(10),
                    })
                    .collect(),
            ),
            3 => Response::Evaluated {
                period: self.float(),
                critical: self.index(64),
                loads: (0..self.index(8)).map(|_| self.float()).collect(),
            },
            4 => Response::WhatIf {
                period: self.float(),
                critical: self.index(64),
            },
            5 => Response::Solved {
                label: self.name(),
                period: self.float(),
                machines: self.index(64),
                assignment: (0..self.index(12)).map(|_| self.index(64)).collect(),
            },
            6 => Response::SolvedAnytime {
                reports: (0..self.index(5)).map(|_| self.gap_report()).collect(),
                period: self.float(),
                machines: self.index(64),
                assignment: (0..self.index(12)).map(|_| self.index(64)).collect(),
            },
            7 => Response::Stats(
                (0..self.index(6))
                    .map(|_| (self.name(), self.next()))
                    .collect(),
            ),
            8 => Response::Shutdown,
            _ => Response::Error {
                code: [
                    ErrorCode::BadRequest,
                    ErrorCode::UnknownInstance,
                    ErrorCode::InvalidPayload,
                    ErrorCode::Infeasible,
                    ErrorCode::NoResidentState,
                    ErrorCode::JournalFailed,
                ][self.index(6)],
                detail: "something went wrong: `x` is not a thing".to_string(),
            },
        }
    }

    fn response(&mut self) -> Response {
        match self.index(12) {
            9 => Response::Hello {
                version: [ProtoVersion::V1, ProtoVersion::V2, ProtoVersion::V3][self.index(3)],
            },
            10 => Response::StatusExport(self.payload()),
            11 => Response::Batch((0..self.index(5)).map(|_| self.flat_response()).collect()),
            _ => self.flat_response(),
        }
    }
}

#[test]
fn generated_requests_round_trip_byte_identically() {
    let mut gen = Gen::new(0xAB5E);
    for _ in 0..500 {
        let request = gen.request();
        let text = request_to_text(&request).unwrap();
        let parsed = request_from_text(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse back: {e} (from {request:?})"));
        assert_eq!(parsed, request, "value drift through {text:?}");
        assert_eq!(
            request_to_text(&parsed).unwrap(),
            text,
            "byte drift for {request:?}"
        );
    }
}

#[test]
fn generated_responses_round_trip_byte_identically() {
    let mut gen = Gen::new(0x5EED);
    for _ in 0..500 {
        let response = gen.response();
        let text = response_to_text(&response).unwrap();
        let parsed = response_from_text(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse back: {e} (from {response:?})"));
        assert_eq!(parsed, response, "value drift through {text:?}");
        assert_eq!(
            response_to_text(&parsed).unwrap(),
            text,
            "byte drift for {response:?}"
        );
    }
}

/// Every prefix of a valid serialized stream fails *typed* — truncation can
/// never panic or be silently accepted as a shorter value.
#[test]
fn truncations_fail_typed_never_panic() {
    let requests = [
        request_to_text(&Request::Load {
            name: "a".into(),
            payload: vec!["tasks 1".into(), "machines 1".into()],
        })
        .unwrap(),
        request_to_text(&Request::Solve {
            name: "inst".into(),
            method: SolveMethod::Heuristic("SD-H2".into()),
            seed: Some(7),
        })
        .unwrap(),
    ];
    for text in requests {
        for cut in 0..text.len() {
            let prefix = &text[..cut];
            if !prefix.is_char_boundary(cut) {
                continue;
            }
            // Either a typed error, or a valid *shorter* parse is impossible
            // for payload-carrying requests cut mid-payload.
            let _ = request_from_text(prefix);
        }
    }
    let responses = [
        response_to_text(&Response::Solved {
            label: "H4w".into(),
            period: 652.0445949359237,
            machines: 3,
            assignment: vec![0, 1, 2],
        })
        .unwrap(),
        response_to_text(&Response::Stats(vec![("requests".into(), 3)])).unwrap(),
    ];
    for text in responses {
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let _ = response_from_text(&text[..cut]);
        }
    }
}

/// Random byte noise parses to a typed error, never a panic.
#[test]
fn noise_is_rejected_typed() {
    let mut gen = Gen::new(0xF00D);
    for _ in 0..200 {
        let length = gen.index(40);
        let noise: String = (0..length)
            .map(|_| (b' ' + (gen.next() % 95) as u8) as char)
            .collect();
        match request_from_text(&format!("{noise}\n")) {
            Ok(_) | Err(ProtoError::Malformed { .. }) | Err(ProtoError::UnexpectedEof { .. }) => {}
            Err(other) => panic!("unexpected error class for {noise:?}: {other:?}"),
        }
        match response_from_text(&format!("{noise}\n")) {
            Ok(_) | Err(ProtoError::Malformed { .. }) | Err(ProtoError::UnexpectedEof { .. }) => {}
            Err(other) => panic!("unexpected error class for {noise:?}: {other:?}"),
        }
    }
}
