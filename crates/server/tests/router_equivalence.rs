//! Acceptance for the sharded serving tier: a router over any worker count
//! answers **byte-identically** to a single-process engine — for scripted
//! stdio sessions, for batch envelopes, and for the aggregated stats block —
//! and repeated evaluates are served from the keyed cache on both.

use mf_core::textio;
use mf_server::{
    request_to_text, serve_stdio, Client, Engine, Request, Router, Server, SolveMethod,
};
use mf_sim::{GeneratorConfig, InstanceGenerator};

fn instance_text(seed: u64) -> String {
    let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(8, 4, 2))
        .generate(seed)
        .unwrap();
    textio::instance_to_text(&instance)
}

/// A session script exercising every shardable command over enough distinct
/// names that a multi-worker router actually spreads them: loads, solves,
/// evaluates (twice, so the keyed cache fires), whatifs, a mixed batch, an
/// error, unloads, and the closing stats block.
fn script() -> String {
    let names = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"];
    let mut requests = vec![Request::Hello { requested: 3 }];
    for (index, name) in names.iter().enumerate() {
        requests.push(Request::Load {
            name: name.to_string(),
            payload: mf_server::text_payload(&instance_text(index as u64 + 1)),
        });
    }
    requests.push(Request::List);
    for name in &names {
        requests.push(Request::Solve {
            name: name.to_string(),
            method: SolveMethod::Heuristic("h4w".into()),
            seed: None,
        });
    }
    // One batch touching every instance, with a non-batchable item in the
    // middle that must answer an error in place.
    let mut items: Vec<Request> = names
        .iter()
        .map(|name| Request::Solve {
            name: name.to_string(),
            method: SolveMethod::Heuristic("SD-H2".into()),
            seed: Some(7),
        })
        .collect();
    items.insert(3, Request::Stats);
    items.push(Request::Unload {
        name: "missing".into(),
    });
    requests.push(Request::Batch(items));
    for name in &names {
        requests.push(Request::WhatIf {
            name: name.to_string(),
            probe: mf_server::Probe::Swap { a: 0, b: 1 },
        });
    }
    // Anytime solves are v3-gated: the router must hand its negotiated
    // version down to the worker engines, or these would answer `err`.
    for name in &names[..2] {
        requests.push(Request::Solve {
            name: name.to_string(),
            method: SolveMethod::Anytime {
                budget: Some(20_000),
            },
            seed: None,
        });
    }
    requests.push(Request::Unload {
        name: "alpha".into(),
    });
    requests.push(Request::List);
    requests.push(Request::Stats);
    requests.push(Request::Shutdown);
    requests
        .iter()
        .map(|request| request_to_text(request).unwrap())
        .collect()
}

#[test]
fn routed_sessions_are_byte_identical_to_a_single_engine() {
    let input = script();
    let mut reference = Vec::new();
    serve_stdio(&Engine::new(1), input.as_bytes(), &mut reference).unwrap();
    let reference = String::from_utf8(reference).unwrap();
    // The script is a real workout, not a trivially-empty transcript.
    assert!(reference.contains("ok batch 8"), "{reference}");
    assert!(
        reference.contains("cannot ride a batch envelope"),
        "{reference}"
    );
    assert!(reference.contains("stat evaluate-cache-"), "{reference}");
    assert!(reference.contains("ok solve-anytime"), "{reference}");
    assert!(reference.contains("gap seed 0 "), "{reference}");
    assert!(reference.contains("stat solves-anytime 2"), "{reference}");
    for (workers, threads) in [(1usize, 1usize), (2, 2), (4, 1), (16, 1)] {
        let router = Router::new(workers, threads);
        let mut output = Vec::new();
        serve_stdio(&router, input.as_bytes(), &mut output).unwrap();
        assert_eq!(
            String::from_utf8(output).unwrap(),
            reference,
            "router({workers} workers, {threads} threads) diverged from the engine"
        );
    }
}

#[test]
fn routed_tcp_sessions_serve_repeated_evaluates_from_the_keyed_cache() {
    let server = Server::bind_router("127.0.0.1:0", 3, 1).unwrap();
    let addr = server.local_addr().unwrap();
    let router = std::sync::Arc::clone(server.router());
    let handle = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    client.hello(2).unwrap();
    client.load("hot", &instance_text(42)).unwrap();
    let solution = client
        .solve("hot", SolveMethod::Heuristic("h4w".into()), None)
        .unwrap();
    let stat = |client: &mut Client, key: &str| {
        client
            .stats()
            .unwrap()
            .into_iter()
            .find(|(k, _)| k == key)
            .unwrap()
            .1
    };
    let builds_after_solve = stat(&mut client, "evaluator-builds");

    // Ten evaluates of the same mapping: every one bit-identical, none of
    // them builds an evaluator — all served from the keyed cache.
    for _ in 0..10 {
        let evaluation = client.evaluate("hot", &solution.mapping).unwrap();
        assert_eq!(evaluation.period.to_bits(), solution.period.to_bits());
    }
    assert_eq!(
        stat(&mut client, "evaluator-builds"),
        builds_after_solve,
        "cache hits must not rebuild evaluators"
    );
    assert_eq!(stat(&mut client, "evaluate-cache-hits"), 10);

    // Reloading the instance invalidates the cached entry.
    client.load("hot", &instance_text(42)).unwrap();
    client.evaluate("hot", &solution.mapping).unwrap();
    assert_eq!(
        stat(&mut client, "evaluator-builds"),
        builds_after_solve + 1
    );

    // The machine-readable report sees all three worker shards.
    let json = client.status_export().unwrap();
    assert!(json.contains("\"workers\": 3"), "{json}");
    assert_eq!(router.workers(), 3);

    client.shutdown().unwrap();
    drop(client);
    handle.join().unwrap();
}
