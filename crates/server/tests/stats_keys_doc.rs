//! Pins the README's `stats` key table to the code: the keys documented
//! between the `stats-keys` markers must equal `Engine::stats_for(V3)` —
//! same names, same wire order, nothing missing, nothing extra — and the
//! `Since` column's v1/v2 rows must be exactly the v1/v2 wire prefixes.
//! The table replaced stale prose once; this test makes that class of
//! drift impossible to reintroduce.

use mf_server::{Engine, ProtoVersion};

/// Extracts the backticked key from each table row between the
/// `<!-- stats-keys:begin -->` / `<!-- stats-keys:end -->` markers.
fn documented_keys(readme: &str) -> Vec<String> {
    let begin = readme
        .find("<!-- stats-keys:begin -->")
        .expect("README is missing the stats-keys:begin marker");
    let end = readme
        .find("<!-- stats-keys:end -->")
        .expect("README is missing the stats-keys:end marker");
    assert!(begin < end, "stats-keys markers are out of order");
    readme[begin..end]
        .lines()
        .filter_map(|line| {
            let cell = line.strip_prefix("| `")?;
            let (key, _) = cell.split_once('`')?;
            Some(key.to_string())
        })
        .collect()
}

#[test]
fn readme_stats_key_table_matches_the_wire_order() {
    let readme = include_str!("../../../README.md");
    let documented = documented_keys(readme);
    let actual: Vec<String> = Engine::new(1)
        .stats_for(ProtoVersion::V3)
        .into_iter()
        .map(|(key, _)| key)
        .collect();
    assert!(
        !actual.is_empty(),
        "stats_for returned no keys — the pin is vacuous"
    );
    assert_eq!(
        documented, actual,
        "README stats-key table drifted from Engine::stats_for(V3); \
         update the table between the stats-keys markers"
    );
}

/// Each older version's rows are a strict prefix of the next: the table's
/// vN-tagged rows, in order, must be exactly `stats_for(vN)` — so a client
/// on any negotiated version can read the same table.
#[test]
fn readme_documents_each_version_prefix_in_order() {
    let readme = include_str!("../../../README.md");
    let begin = readme.find("<!-- stats-keys:begin -->").unwrap();
    let end = readme.find("<!-- stats-keys:end -->").unwrap();
    for (tag_limit, version) in [("v1", ProtoVersion::V1), ("v2", ProtoVersion::V2)] {
        let documented: Vec<String> = readme[begin..end]
            .lines()
            .filter_map(|line| {
                let cell = line.strip_prefix("| `")?;
                let (key, rest) = cell.split_once('`')?;
                let tag = rest.strip_prefix(" | ")?.split(' ').next()?;
                (tag <= tag_limit).then(|| key.to_string())
            })
            .collect();
        let actual: Vec<String> = Engine::new(1)
            .stats_for(version)
            .into_iter()
            .map(|(key, _)| key)
            .collect();
        assert_eq!(
            documented, actual,
            "the table's ≤{tag_limit} rows drifted from Engine::stats_for({tag_limit})"
        );
    }
}

#[test]
fn readme_documents_the_v1_prefix_in_order() {
    // The v1 list is a strict prefix of the v2 list: the `Since` column's
    // v1 rows must be exactly `stats()` in order, so a v1-only client can
    // read the same table.
    let readme = include_str!("../../../README.md");
    let begin = readme.find("<!-- stats-keys:begin -->").unwrap();
    let end = readme.find("<!-- stats-keys:end -->").unwrap();
    let v1_documented: Vec<String> = readme[begin..end]
        .lines()
        .filter_map(|line| {
            let cell = line.strip_prefix("| `")?;
            let (key, rest) = cell.split_once('`')?;
            rest.starts_with(" | v1 |").then(|| key.to_string())
        })
        .collect();
    let v1_actual: Vec<String> = Engine::new(1)
        .stats_for(ProtoVersion::V1)
        .into_iter()
        .map(|(key, _)| key)
        .collect();
    assert_eq!(
        v1_documented, v1_actual,
        "the table's v1-tagged rows drifted from Engine::stats_for(V1)"
    );
}
