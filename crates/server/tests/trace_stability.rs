//! Golden-transcript stability under tracing: replaying every committed
//! golden session with a live `mf-trace v1` writer (and a tight
//! slow-request threshold) must produce **byte-identical** protocol output
//! to the committed transcript — observability is read-only on the wire.
//! The trace files themselves must round-trip through the parser, with one
//! span per request of the script.

use mf_obs::{events_from_text, events_to_text, SharedTraceWriter, TraceEvent};
use mf_server::{serve_stdio, Engine, ObsConfig, Router};
use std::path::{Path, PathBuf};
use std::sync::Arc;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("mf-trace-stability-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Every golden session script, paired with its committed transcript. The
/// restart pair replays against one engine that never dies — the same
/// uninterrupted reference `restart_session.out` pins.
fn golden_sessions() -> Vec<(&'static str, Vec<&'static str>, &'static str)> {
    vec![
        (
            "smoke_session",
            vec![include_str!("golden/smoke_session.in")],
            include_str!("golden/smoke_session.out"),
        ),
        (
            "batched_session",
            vec![include_str!("golden/batched_session.in")],
            include_str!("golden/batched_session.out"),
        ),
        (
            "restart_session",
            vec![
                include_str!("golden/restart_session_a.in"),
                include_str!("golden/restart_session_b.in"),
            ],
            include_str!("golden/restart_session.out"),
        ),
    ]
}

fn replay(engine: &Engine, scripts: &[&str]) -> String {
    let mut full = String::new();
    for script in scripts {
        let mut output = Vec::new();
        serve_stdio(engine, script.as_bytes(), &mut output).unwrap();
        full.push_str(&String::from_utf8(output).unwrap());
    }
    full
}

#[test]
fn golden_transcripts_are_byte_identical_with_tracing_on() {
    for (name, scripts, expected) in golden_sessions() {
        // Tracing off: the committed transcript (same engine config as the
        // golden tests — guards against environment skew before blaming
        // tracing).
        let untraced = replay(&Engine::new(1), &scripts);
        assert_eq!(untraced, expected, "{name}: untraced replay drifted");

        // Tracing on, with a paranoid 0 ns slow threshold so every request
        // also exercises the slow-request path.
        let dir = TempDir::new(name);
        let trace_path = dir.path().join("server.mf-trace");
        let trace = Arc::new(SharedTraceWriter::create(&trace_path).unwrap());
        let obs = ObsConfig::new()
            .with_trace(Arc::clone(&trace))
            .with_slow_threshold_ns(0);
        let traced = replay(&Engine::with_observability(1, obs), &scripts);
        assert_eq!(
            traced, expected,
            "{name}: tracing changed the protocol bytes"
        );
        trace.finish().unwrap();

        // The trace round-trips and covers the whole script: every request
        // closed a span (each script ends in `shutdown`, so there is at
        // least one), and threshold 0 pairs each span with a slow record.
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let events = events_from_text(&text).unwrap();
        assert_eq!(
            events_to_text(&events).unwrap(),
            text,
            "{name}: trace file is not canonical"
        );
        let spans = events
            .iter()
            .filter(|event| matches!(event, TraceEvent::Span { .. }))
            .count();
        let slow = events
            .iter()
            .filter(|event| matches!(event, TraceEvent::Slow { .. }))
            .count();
        assert!(spans > 0, "{name}: traced replay closed no spans");
        assert_eq!(spans, slow, "{name}: threshold 0 makes every span slow");
    }
}

/// Same stability through a sharded router: tracing every worker into one
/// shared file leaves the transcript byte-identical for any worker count.
#[test]
fn router_transcripts_are_byte_identical_with_tracing_on() {
    for (name, scripts, expected) in golden_sessions() {
        if name == "restart_session" {
            // The uninterrupted restart reference is an engine-only pin;
            // the router variants live in warm_restart.rs.
            continue;
        }
        for workers in [2usize, 4] {
            let dir = TempDir::new(&format!("{name}-router{workers}"));
            let trace_path = dir.path().join("server.mf-trace");
            let trace = Arc::new(SharedTraceWriter::create(&trace_path).unwrap());
            let obs = ObsConfig::new().with_trace(Arc::clone(&trace));
            let router = Router::with_observability(workers, 1, obs);
            let mut output = Vec::new();
            serve_stdio(&router, scripts[0].as_bytes(), &mut output).unwrap();
            assert_eq!(
                String::from_utf8(output).unwrap(),
                expected,
                "{name}: tracing changed the {workers}-worker router bytes"
            );
            trace.finish().unwrap();
            let text = std::fs::read_to_string(&trace_path).unwrap();
            events_from_text(&text)
                .unwrap_or_else(|e| panic!("{name}: {workers}-worker trace does not parse: {e}"));
        }
    }
}
