//! Kill-and-resume warm restarts: a durable engine (or router) that is
//! dropped mid-conversation — no shutdown, no flushes beyond the journal's
//! own per-append flush — and reopened over the same data directory must
//! continue the conversation **byte-identically** to one process that never
//! died.
//!
//! The two session scripts are pinned under `tests/golden/` together with
//! the uninterrupted transcript; the CI crash-recovery job drives the same
//! scripts through the real binary with a real SIGKILL between them.
//! Deliberately free of `stats`/`status-export` (counters reset on restart)
//! and of `shutdown` (the CI job inspects the server after session B).
//!
//! Regenerate after an intentional protocol change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p mf-server --test warm_restart
//! ```

use mf_core::textio;
use mf_heuristics::{H4wFastestMachine, Heuristic};
use mf_server::proto::{text_payload, Request, Response};
use mf_server::{serve_stdio, Engine, Handler, Router};
use mf_sim::{GeneratorConfig, InstanceGenerator};
use std::path::{Path, PathBuf};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("mf-warm-restart-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn instance_text(tasks: usize, machines: usize, types: usize, seed: u64) -> String {
    let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(tasks, machines, types))
        .generate(seed)
        .unwrap();
    textio::instance_to_text(&instance)
}

/// `alpha`'s instance — and the H4w mapping both sessions evaluate (the
/// same mapping `solve alpha heuristic H4w` answers, so the evaluate after
/// the restart exercises the generation-keyed cache on recovered state).
fn alpha_text() -> String {
    instance_text(10, 4, 2, 9)
}

fn beta_text() -> String {
    instance_text(12, 5, 3, 11)
}

fn alpha_mapping_text() -> String {
    let instance = textio::instance_from_text(&alpha_text()).unwrap();
    textio::mapping_to_text(&H4wFastestMachine.map(&instance).unwrap())
}

/// `<command> <N>` followed by the `N` payload lines.
fn with_payload(command: &str, text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = format!("{command} {}\n", lines.len());
    for line in &lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The pre-kill session: loads both instances, then works `alpha` hard
/// enough to warm the keyed evaluate cache and park resident whatif state.
fn session_a() -> String {
    let mut script = String::new();
    script.push_str(&with_payload("load alpha", &alpha_text()));
    script.push_str(&with_payload("load beta", &beta_text()));
    script.push_str("list\n");
    script.push_str("solve alpha heuristic H4w\n");
    script.push_str(&with_payload("evaluate alpha", &alpha_mapping_text()));
    script.push_str("whatif alpha move 0 1\n");
    script.push_str("solve beta portfolio\n");
    script
}

/// The post-kill session: both instances must still answer — `list` shows
/// them, the evaluate/whatif pair resumes on `alpha`, `beta` still solves,
/// and the unload must stick.
fn session_b() -> String {
    let mut script = String::new();
    script.push_str("list\n");
    script.push_str(&with_payload("evaluate alpha", &alpha_mapping_text()));
    script.push_str("whatif alpha move 0 1\n");
    script.push_str("whatif alpha swap 0 2\n");
    script.push_str("solve beta heuristic SD-H2 seed 7\n");
    script.push_str("unload beta\n");
    script.push_str("list\n");
    script
}

fn transcript<H: Handler>(handler: &H, script: &str) -> String {
    let mut output = Vec::new();
    serve_stdio(handler, script.as_bytes(), &mut output).unwrap();
    String::from_utf8(output).unwrap()
}

/// Both sessions against one process that never dies — the reference every
/// kill-and-resume variant must reproduce byte for byte.
fn uninterrupted_reference() -> String {
    let engine = Engine::new(1);
    let mut full = transcript(&engine, &session_a());
    full.push_str(&transcript(&engine, &session_b()));
    full
}

/// The scripts and the uninterrupted transcript are pinned as golden files —
/// the same bytes the CI crash-recovery job pipes through the real binary.
#[test]
fn restart_scripts_and_transcript_are_pinned() {
    let golden = |file: &str| format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"));
    let pins = [
        (golden("restart_session_a.in"), session_a()),
        (golden("restart_session_b.in"), session_b()),
        (golden("restart_session.out"), uninterrupted_reference()),
    ];
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        for (path, actual) in &pins {
            std::fs::write(path, actual).expect("write golden file");
        }
        return;
    }
    for (path, actual) in &pins {
        let expected = std::fs::read_to_string(path).expect("golden file exists");
        assert_eq!(
            actual, &expected,
            "{path} drifted; re-run with UPDATE_GOLDEN=1 if the change is intentional"
        );
    }
}

/// The tentpole pin: kill a durable server after session A (drop without
/// shutdown), reopen the data directory, run session B — the concatenated
/// transcript equals the uninterrupted run, for a single engine and for a
/// sharded router alike.
#[test]
fn kill_and_resume_matches_the_uninterrupted_run() {
    let reference = uninterrupted_reference();
    // Single durable engine.
    {
        let dir = TempDir::new("engine");
        let mut full = {
            let engine = Engine::open(1, dir.path()).unwrap();
            transcript(&engine, &session_a())
        }; // dropped here: the "kill"
        let engine = Engine::open(1, dir.path()).unwrap();
        full.push_str(&transcript(&engine, &session_b()));
        assert_eq!(full, reference, "durable engine restart changed the bytes");
    }
    // Sharded durable routers.
    for workers in [1usize, 2] {
        let dir = TempDir::new(&format!("router{workers}"));
        let mut full = {
            let router = Router::with_data_dir(workers, 1, dir.path()).unwrap();
            transcript(&router, &session_a())
        };
        let router = Router::with_data_dir(workers, 1, dir.path()).unwrap();
        full.push_str(&transcript(&router, &session_b()));
        assert_eq!(
            full, reference,
            "{workers}-worker durable router restart changed the bytes"
        );
    }
}

/// One shared journal serves any worker count: a session served by a single
/// durable engine can be resumed by a 2-worker router (each shard replays
/// only the names that hash to it) and vice versa.
#[test]
fn restarts_recover_across_worker_counts() {
    let reference = uninterrupted_reference();
    let dir = TempDir::new("cross");
    let mut full = {
        let engine = Engine::open(1, dir.path()).unwrap();
        transcript(&engine, &session_a())
    };
    let router = Router::with_data_dir(2, 1, dir.path()).unwrap();
    full.push_str(&transcript(&router, &session_b()));
    assert_eq!(
        full, reference,
        "engine-to-router restart changed the bytes"
    );
}

/// The restart-generation bugfix, observed at the store: generations issued
/// after a replay are strictly above every generation ever issued before it,
/// so a `(generation, fingerprint)` cache key can never alias across the
/// restart.
#[test]
fn restart_resumes_generations_strictly_above_the_journal_mark() {
    let dir = TempDir::new("generations");
    {
        let engine = Engine::open(1, dir.path()).unwrap();
        let mut session = engine.begin_session();
        for (name, text) in [("alpha", alpha_text()), ("beta", beta_text())] {
            let response = engine.dispatch(
                &mut session,
                Request::Load {
                    name: name.into(),
                    payload: text_payload(&text),
                },
            );
            assert!(matches!(response, Response::Loaded { .. }), "{response:?}");
        }
        // beta took generation 1; unloading it must not surrender the mark.
        let response = engine.dispatch(
            &mut session,
            Request::Unload {
                name: "beta".into(),
            },
        );
        assert!(
            matches!(response, Response::Unloaded { .. }),
            "{response:?}"
        );
        assert_eq!(engine.store().get("alpha").unwrap().generation, 0);
    }
    let engine = Engine::open(1, dir.path()).unwrap();
    let mut session = engine.begin_session();
    assert_eq!(
        engine.store().get("alpha").unwrap().generation,
        0,
        "replay must pin the journaled generation"
    );
    let response = engine.dispatch(
        &mut session,
        Request::Load {
            name: "gamma".into(),
            payload: text_payload(&beta_text()),
        },
    );
    assert!(matches!(response, Response::Loaded { .. }), "{response:?}");
    assert_eq!(
        engine.store().get("gamma").unwrap().generation,
        2,
        "the first post-restart generation must be strictly above beta's 1"
    );
}

/// The high-severity restart-aliasing regression: shard engines issue
/// generations from independent counters, so a shared journal written at
/// `--workers 2` pins both shards' first loads at generation 0. Restarting
/// at `--workers 1` replays both into ONE engine, in front of ONE evaluate
/// cache — and evaluating both with the same mapping bytes (same
/// fingerprint) must answer each instance's own period, which only holds
/// because the cache key carries the instance name.
#[test]
fn same_generation_instances_replayed_into_one_engine_do_not_alias_the_cache() {
    // Two instances of identical shape (one shared mapping text is valid
    // for both) whose processing times differ (so their periods differ).
    let shaped_instance = |fast: u64, slow: u64| {
        format!(
            "tasks 2\nmachines 2\ntypes 1\ntask 0 0\ntask 1 0\n\
             time 0 0 {fast}\ntime 0 1 {slow}\n\
             failure 0 0 0.0\nfailure 0 1 0.0\nfailure 1 0 0.0\nfailure 1 1 0.0\n"
        )
    };
    let text_a = shaped_instance(10, 20);
    let text_b = shaped_instance(30, 40);
    let mapping = {
        let instance = textio::instance_from_text(&text_a).unwrap();
        textio::mapping_to_text(&H4wFastestMachine.map(&instance).unwrap())
    };
    // Two names that land on different shards of a 2-worker router.
    let probe = Router::new(2, 1);
    let candidates: Vec<String> = (0..64).map(|k| format!("inst{k}")).collect();
    let name_a = candidates
        .iter()
        .find(|name| probe.shard_of(name) == 0)
        .expect("64 names must touch shard 0")
        .clone();
    let name_b = candidates
        .iter()
        .find(|name| probe.shard_of(name) == 1)
        .expect("64 names must touch shard 1")
        .clone();

    let dir = TempDir::new("alias");
    {
        let router = Router::with_data_dir(2, 1, dir.path()).unwrap();
        let mut session = router.begin_session();
        for (name, text) in [(&name_a, &text_a), (&name_b, &text_b)] {
            let response = router.dispatch(
                &mut session,
                Request::Load {
                    name: name.to_string(),
                    payload: text_payload(text),
                },
            );
            assert!(matches!(response, Response::Loaded { .. }), "{response:?}");
        }
        // The collision ingredient: both shards issued generation 0.
        let generation_of = |name: &str| {
            let shard = router.shard_of(name);
            router.engines()[shard]
                .store()
                .get(name)
                .unwrap()
                .generation
        };
        assert_eq!(generation_of(&name_a), 0);
        assert_eq!(generation_of(&name_b), 0);
    }

    // Restart as a single engine: both live in one store at generation 0.
    let engine = Engine::open(1, dir.path()).unwrap();
    let mut session = engine.begin_session();
    let mut evaluate = |name: &str| match engine.dispatch(
        &mut session,
        Request::Evaluate {
            name: name.to_string(),
            payload: text_payload(&mapping),
        },
    ) {
        Response::Evaluated { period, .. } => period,
        other => panic!("evaluate {name} failed: {other:?}"),
    };
    let expected = |text: &str| {
        let instance = textio::instance_from_text(text).unwrap();
        let mapping = textio::mapping_from_text(&mapping).unwrap();
        instance.period(&mapping).unwrap().value()
    };
    // Warm the cache with `name_a`'s entry, then `name_b` must miss it.
    let got_a = evaluate(&name_a);
    let got_b = evaluate(&name_b);
    assert_eq!(got_a.to_bits(), expected(&text_a).to_bits());
    assert_eq!(
        got_b.to_bits(),
        expected(&text_b).to_bits(),
        "`evaluate {name_b}` must not be served from `{name_a}`'s cache entry"
    );
    assert_ne!(got_a.to_bits(), got_b.to_bits());
}

/// The recovery counter block: after session A the journal holds the boot
/// mark plus two loads; a reopening engine reports exactly that replay in
/// `status_report` — and in-memory engines keep an empty block (their JSON
/// is unchanged).
#[test]
fn recovery_counters_surface_the_replay_in_the_status_report() {
    let dir = TempDir::new("counters");
    {
        let engine = Engine::open(1, dir.path()).unwrap();
        assert!(
            engine
                .status_report()
                .recovery
                .iter()
                .any(|(key, value)| key == "journal-entries-replayed" && *value == 0),
            "a fresh journal replays nothing"
        );
        transcript(&engine, &session_a());
    }
    let engine = Engine::open(1, dir.path()).unwrap();
    let report = engine.status_report();
    let get = |key: &str| {
        report
            .recovery
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("no recovery counter `{key}`"))
            .1
    };
    assert_eq!(get("journal-entries-replayed"), 3, "boot mark + two loads");
    assert!(get("journal-bytes-replayed") > 0);
    assert_eq!(get("journal-compactions"), 1, "the boot snapshot");
    assert_eq!(get("journal-live-instances"), 2);
    assert_eq!(get("journal-generation-mark"), 2);
    let json = report.to_json();
    assert!(json.contains("\"journal-entries-replayed\": 3"), "{json}");
    // A durable router over the same directory reports the same block.
    drop(engine);
    let router = Router::with_data_dir(2, 1, dir.path()).unwrap();
    let router_report = router.status_report();
    assert_eq!(router_report.recovery, report.recovery);
    // In-memory servers never grow the block.
    assert!(Engine::new(1).status_report().recovery.is_empty());
    assert!(!Engine::new(1)
        .status_report()
        .to_json()
        .contains("recovery"));
}
