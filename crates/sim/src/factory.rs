//! Discrete-event simulation of a micro-factory production line.
//!
//! The optimizers in this repository reason about an *analytic* period; this
//! simulator executes a mapping on a stochastic model of the factory to check
//! that the analytic value describes the real system:
//!
//! * each machine processes the tasks mapped to it, one product at a time;
//! * performing task `Tᵢ` on machine `Mᵤ` takes `w_{i,u}` ms and, with
//!   probability `f_{i,u}`, destroys the product;
//! * source tasks draw from an unlimited supply of raw products; a join task
//!   needs one product from each of its predecessors; finished products of the
//!   sink tasks are counted at the output;
//! * inter-task buffers are bounded (`buffer_capacity` products): a machine
//!   does not start a task whose successor buffer is full. This back-pressure
//!   is what real micro-factory cells do with their limited fixtures, and it
//!   is what makes a machine that owns several tasks share its time between
//!   them in the proportions the period analysis assumes;
//! * when several of its tasks are ready, a machine processes the one closest
//!   to the output (largest topological position), which keeps the pipeline
//!   drained and lets the bottleneck machine pace the line.
//!
//! The measured throughput (products per ms after a warm-up) converges to the
//! inverse of the analytic period for long enough runs.

use mf_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// RNG seed (failure draws).
    pub seed: u64,
    /// Stop after this many finished products (0 = no product limit).
    pub target_products: u64,
    /// Stop after this much simulated time (ms).
    pub max_time: f64,
    /// Ignore the first `warmup_products` finished products when measuring the
    /// steady-state throughput.
    pub warmup_products: u64,
    /// Capacity of the buffer between a task and its successor (products).
    pub buffer_capacity: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            seed: 0x5EED,
            target_products: 1_000,
            max_time: 1e9,
            warmup_products: 50,
            buffer_capacity: 16,
        }
    }
}

/// Aggregated results of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Finished products counted at the output.
    pub produced: u64,
    /// Total simulated time (ms).
    pub elapsed: f64,
    /// Per-task number of processing attempts.
    pub attempts: Vec<u64>,
    /// Per-task number of products destroyed by a failure.
    pub losses: Vec<u64>,
    /// Steady-state throughput (products / ms), measured after the warm-up.
    pub throughput: f64,
    /// Inverse of [`SimulationReport::throughput`] (ms / product).
    pub measured_period: f64,
}

impl SimulationReport {
    /// Observed failure ratio of a task (losses / attempts), if it ran at all.
    pub fn observed_failure_rate(&self, task: TaskId) -> Option<f64> {
        let attempts = self.attempts[task.index()];
        if attempts == 0 {
            None
        } else {
            Some(self.losses[task.index()] as f64 / attempts as f64)
        }
    }
}

/// Event: machine `machine` finishes processing one product of task `task`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Completion {
    time: f64,
    machine: MachineId,
    task: TaskId,
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we need the earliest event.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.machine.index().cmp(&self.machine.index()))
            .then_with(|| other.task.index().cmp(&self.task.index()))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event simulation of one mapping on one instance.
#[derive(Debug)]
pub struct FactorySimulation<'a> {
    instance: &'a Instance,
    mapping: &'a Mapping,
    config: SimulationConfig,
}

impl<'a> FactorySimulation<'a> {
    /// Prepares a simulation of `mapping` on `instance`.
    pub fn new(instance: &'a Instance, mapping: &'a Mapping, config: SimulationConfig) -> Self {
        FactorySimulation {
            instance,
            mapping,
            config,
        }
    }

    /// Runs the simulation and returns the aggregated report.
    pub fn run(&self) -> Result<SimulationReport> {
        let instance = self.instance;
        let mapping = self.mapping;
        instance.validate_mapping(mapping, MappingKind::General)?;

        let app = instance.application();
        let n = app.task_count();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Topological position of every task: larger = closer to the output.
        let mut topo_position = vec![0usize; n];
        for (pos, &task) in app.topological_order().iter().enumerate() {
            topo_position[task.index()] = pos;
        }

        // Which predecessor slot feeds which task, and available input counts.
        // Sources have an empty slot list and unlimited supply.
        let mut inputs: Vec<Vec<u64>> = (0..n)
            .map(|i| vec![0u64; app.predecessors(TaskId(i)).len()])
            .collect();
        // For routing: predecessor index of `task` within its successor's slot list.
        let mut slot_in_successor = vec![0usize; n];
        for i in 0..n {
            for (slot, &pred) in app.predecessors(TaskId(i)).iter().enumerate() {
                slot_in_successor[pred.index()] = slot;
            }
        }

        // Tasks grouped per machine, most-downstream first.
        let mut machine_tasks: Vec<Vec<TaskId>> = mapping.tasks_by_machine();
        for tasks in &mut machine_tasks {
            tasks.sort_by_key(|t| std::cmp::Reverse(topo_position[t.index()]));
        }

        let mut attempts = vec![0u64; n];
        let mut losses = vec![0u64; n];
        let mut produced = 0u64;
        let mut machine_busy = vec![false; instance.machine_count()];
        let mut events: BinaryHeap<Completion> = BinaryHeap::new();
        let mut now = 0.0f64;
        let mut warmup_time = 0.0f64;
        let mut warmup_count = 0u64;
        let capacity = self.config.buffer_capacity.max(1);

        // A task is startable when every predecessor buffer has a product and
        // the buffer towards its successor is not full (back-pressure).
        let is_ready = |task: TaskId, inputs: &Vec<Vec<u64>>| -> bool {
            let slots = &inputs[task.index()];
            let inputs_available = slots.is_empty() || slots.iter().all(|&count| count > 0);
            let output_space = match app.successor(task) {
                None => true,
                Some(succ) => {
                    let slot = slot_in_successor[task.index()];
                    inputs[succ.index()][slot] < capacity
                }
            };
            inputs_available && output_space
        };

        // Start the next job on a machine if one is ready (consuming its inputs).
        let start_next = |machine: MachineId,
                          now: f64,
                          inputs: &mut Vec<Vec<u64>>,
                          machine_busy: &mut Vec<bool>,
                          events: &mut BinaryHeap<Completion>| {
            let candidate = machine_tasks[machine.index()]
                .iter()
                .copied()
                .find(|&t| is_ready(t, inputs));
            if let Some(task) = candidate {
                for count in inputs[task.index()].iter_mut() {
                    *count -= 1;
                }
                machine_busy[machine.index()] = true;
                events.push(Completion {
                    time: now + instance.time(task, machine),
                    machine,
                    task,
                });
            } else {
                machine_busy[machine.index()] = false;
            }
        };

        // Wake every idle machine (buffer levels may have unblocked any of them).
        let wake_idle = |now: f64,
                         inputs: &mut Vec<Vec<u64>>,
                         machine_busy: &mut Vec<bool>,
                         events: &mut BinaryHeap<Completion>| {
            for u in instance.platform().machines() {
                if !machine_busy[u.index()] {
                    start_next(u, now, inputs, machine_busy, events);
                }
            }
        };

        wake_idle(now, &mut inputs, &mut machine_busy, &mut events);

        while let Some(Completion {
            time,
            machine,
            task,
        }) = events.pop()
        {
            now = time;
            if now > self.config.max_time {
                break;
            }
            attempts[task.index()] += 1;
            let failed = rng.gen_bool(instance.failure(task, machine).value());
            if failed {
                losses[task.index()] += 1;
            } else {
                match app.successor(task) {
                    None => {
                        produced += 1;
                        if produced == self.config.warmup_products {
                            warmup_time = now;
                            warmup_count = produced;
                        }
                        if self.config.target_products > 0
                            && produced >= self.config.target_products
                        {
                            break;
                        }
                    }
                    Some(succ) => {
                        let slot = slot_in_successor[task.index()];
                        inputs[succ.index()][slot] += 1;
                    }
                }
            }
            // The machine that just finished picks its next job, and any machine
            // unblocked by the buffer movement restarts as well.
            machine_busy[machine.index()] = false;
            wake_idle(now, &mut inputs, &mut machine_busy, &mut events);
        }

        let (steady_products, steady_time) = if produced > warmup_count && warmup_time > 0.0 {
            ((produced - warmup_count) as f64, now - warmup_time)
        } else {
            (produced as f64, now)
        };
        let throughput = if steady_time > 0.0 {
            steady_products / steady_time
        } else {
            0.0
        };
        let measured_period = if throughput > 0.0 {
            1.0 / throughput
        } else {
            f64::INFINITY
        };

        Ok(SimulationReport {
            produced,
            elapsed: now,
            attempts,
            losses,
            throughput,
            measured_period,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_instance(f: f64) -> (Instance, Mapping) {
        let app = Application::linear_chain(&[0, 1, 0]).unwrap();
        let platform =
            Platform::from_type_times(2, vec![vec![100.0, 120.0], vec![80.0, 90.0]]).unwrap();
        let failures = FailureModel::uniform(3, 2, FailureRate::new(f).unwrap());
        let instance = Instance::new(app, platform, failures).unwrap();
        let mapping = Mapping::from_indices(&[0, 1, 0], 2).unwrap();
        (instance, mapping)
    }

    #[test]
    fn failure_free_throughput_matches_the_analytic_period() {
        let (instance, mapping) = simple_instance(0.0);
        let analytic = instance.period(&mapping).unwrap().value();
        let sim = FactorySimulation::new(
            &instance,
            &mapping,
            SimulationConfig {
                target_products: 2_000,
                ..Default::default()
            },
        );
        let report = sim.run().unwrap();
        assert_eq!(report.produced, 2_000);
        assert!(report.losses.iter().all(|&l| l == 0));
        let relative = (report.measured_period - analytic).abs() / analytic;
        assert!(
            relative < 0.05,
            "measured {} vs analytic {analytic}",
            report.measured_period
        );
    }

    #[test]
    fn throughput_with_failures_tracks_the_analytic_period() {
        let (instance, mapping) = simple_instance(0.1);
        let analytic = instance.period(&mapping).unwrap().value();
        let sim = FactorySimulation::new(
            &instance,
            &mapping,
            SimulationConfig {
                target_products: 5_000,
                warmup_products: 200,
                ..Default::default()
            },
        );
        let report = sim.run().unwrap();
        let relative = (report.measured_period - analytic).abs() / analytic;
        assert!(
            relative < 0.10,
            "measured {} vs analytic {analytic} (relative error {relative:.3})",
            report.measured_period
        );
    }

    #[test]
    fn observed_failure_rates_match_the_model() {
        let (instance, mapping) = simple_instance(0.2);
        let sim = FactorySimulation::new(
            &instance,
            &mapping,
            SimulationConfig {
                target_products: 3_000,
                ..Default::default()
            },
        );
        let report = sim.run().unwrap();
        for task in instance.application().tasks() {
            let observed = report.observed_failure_rate(task.id).unwrap();
            assert!(
                (observed - 0.2).abs() < 0.03,
                "task {} observed failure rate {observed}",
                task.id
            );
        }
    }

    #[test]
    fn join_applications_merge_products() {
        let app = Application::paper_figure1();
        let n = app.task_count();
        let p = app.type_count();
        let platform = Platform::homogeneous(3, p, 50.0).unwrap();
        let failures = FailureModel::uniform(n, 3, FailureRate::new(0.05).unwrap());
        let instance = Instance::new(app, platform, failures).unwrap();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1, 2], 3).unwrap();
        let analytic = instance.period(&mapping).unwrap().value();
        let sim = FactorySimulation::new(
            &instance,
            &mapping,
            SimulationConfig {
                target_products: 2_000,
                warmup_products: 100,
                ..Default::default()
            },
        );
        let report = sim.run().unwrap();
        assert!(report.produced >= 2_000);
        let relative = (report.measured_period - analytic).abs() / analytic;
        assert!(
            relative < 0.15,
            "measured {} vs analytic {analytic} (relative error {relative:.3})",
            report.measured_period
        );
    }

    #[test]
    fn time_limit_stops_the_run() {
        let (instance, mapping) = simple_instance(0.0);
        let sim = FactorySimulation::new(
            &instance,
            &mapping,
            SimulationConfig {
                target_products: 0,
                max_time: 10_000.0,
                ..Default::default()
            },
        );
        let report = sim.run().unwrap();
        assert!(report.elapsed <= 10_000.0 + 500.0);
        assert!(report.produced > 0);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let (instance, mapping) = simple_instance(0.1);
        let config = SimulationConfig {
            target_products: 500,
            ..Default::default()
        };
        let a = FactorySimulation::new(&instance, &mapping, config)
            .run()
            .unwrap();
        let b = FactorySimulation::new(&instance, &mapping, config)
            .run()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mapping_dimension_is_validated() {
        let (instance, _) = simple_instance(0.0);
        let bad = Mapping::from_indices(&[0, 1], 2).unwrap();
        let sim = FactorySimulation::new(&instance, &bad, SimulationConfig::default());
        assert!(sim.run().is_err());
    }
}
