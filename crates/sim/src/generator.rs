//! Random instance generators reproducing the paper's experimental setup.
//!
//! Every figure of §7 draws `w_{i,u}` uniformly in `[100, 1000]` ms and
//! `f_{i,u}` uniformly in `[0.5%, 2%]` (or `[0, 10%]` for the high-failure
//! experiment of Figure 8, or attached to tasks only for Figure 9). The
//! generators are fully seeded so that every experiment in this repository is
//! reproducible.

use mf_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The precedence shape of generated applications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApplicationShape {
    /// A single linear chain in index order — the shape of every experiment
    /// in the paper's §7.
    Chain,
    /// A random **in-forest**: every non-final task either becomes a root
    /// (with the given probability) or points to a uniformly random later
    /// task, so fan-in is mixed and several trees coexist — the general
    /// application model of the paper's §2 (Figure 1 is a tree).
    RandomInForest {
        /// Probability that a task is a root (has no successor).
        root_probability: f64,
    },
}

/// How failure rates are structured across tasks and machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureStructure {
    /// Independent draw for every (task, machine) pair — the paper's general
    /// model.
    PerTaskAndMachine,
    /// One draw per task, shared by all machines (`f_{i,u} = f_i`, Figure 9).
    PerTask,
    /// One draw per machine, shared by all tasks (`f_{i,u} = f_u`, Theorem 2).
    PerMachine,
    /// A single constant failure rate everywhere.
    Constant(f64),
}

/// Parameters of the random instance generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Number of tasks `n`.
    pub tasks: usize,
    /// Number of machines `m`.
    pub machines: usize,
    /// Number of task types `p` (`p ≤ n` and, for specialized mappings to
    /// exist, `p ≤ m`).
    pub types: usize,
    /// Processing times are drawn uniformly in this range (ms).
    pub time_range: (f64, f64),
    /// Failure rates are drawn uniformly in this range.
    pub failure_range: (f64, f64),
    /// Structure of the failure model.
    pub failure_structure: FailureStructure,
    /// If `true` the platform is homogeneous: one time per type drawn once and
    /// shared by all machines (used for the Theorem 1 experiments).
    pub homogeneous_machines: bool,
    /// Precedence shape of the generated application.
    pub shape: ApplicationShape,
}

impl GeneratorConfig {
    /// The paper's standard setting: `w ∈ [100, 1000]` ms, `f ∈ [0.5%, 2%]`,
    /// per-(task, machine) failures.
    pub fn paper_standard(tasks: usize, machines: usize, types: usize) -> Self {
        GeneratorConfig {
            tasks,
            machines,
            types,
            time_range: (100.0, 1000.0),
            failure_range: (0.005, 0.02),
            failure_structure: FailureStructure::PerTaskAndMachine,
            homogeneous_machines: false,
            shape: ApplicationShape::Chain,
        }
    }

    /// The high-failure setting of Figure 8: `f ∈ [0, 10%]`.
    pub fn paper_high_failure(tasks: usize, machines: usize, types: usize) -> Self {
        GeneratorConfig {
            failure_range: (0.0, 0.10),
            ..Self::paper_standard(tasks, machines, types)
        }
    }

    /// The one-to-one setting of Figure 9: failures attached to tasks only.
    pub fn paper_task_failures(tasks: usize, machines: usize, types: usize) -> Self {
        GeneratorConfig {
            failure_structure: FailureStructure::PerTask,
            ..Self::paper_standard(tasks, machines, types)
        }
    }

    /// A tree-shaped workload: standard times, the Figure-8 failure range
    /// (`f ∈ [0, 10%]`) and a random in-forest application with ~15% roots —
    /// the shape the evaluator's forest fast path and the sweep caches are
    /// exercised on.
    pub fn standard_in_forest(tasks: usize, machines: usize, types: usize) -> Self {
        GeneratorConfig {
            failure_range: (0.0, 0.10),
            shape: ApplicationShape::RandomInForest {
                root_probability: 0.15,
            },
            ..Self::paper_standard(tasks, machines, types)
        }
    }
}

/// Seeded random generator of linear-chain problem instances.
#[derive(Debug, Clone)]
pub struct InstanceGenerator {
    config: GeneratorConfig,
}

impl InstanceGenerator {
    /// Creates a generator for a configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        InstanceGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates one instance from a seed.
    pub fn generate(&self, seed: u64) -> Result<Instance> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.generate_with(&mut rng)
    }

    /// Generates one instance from an existing RNG.
    pub fn generate_with(&self, rng: &mut StdRng) -> Result<Instance> {
        let c = &self.config;
        let n = c.tasks;
        let m = c.machines;
        let p = c.types.max(1);

        // Task types: guarantee every type appears at least once (when n ≥ p),
        // then fill uniformly, so the declared p matches the effective p.
        let mut types: Vec<usize> = (0..n)
            .map(|i| {
                if i < p && n >= p {
                    i
                } else {
                    rng.gen_range(0..p)
                }
            })
            .collect();
        // Shuffle positions so the guaranteed types are not clustered at the head.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            types.swap(i, j);
        }
        let app = match c.shape {
            ApplicationShape::Chain => Application::linear_chain(&types)?,
            ApplicationShape::RandomInForest { root_probability } => {
                // Successors point strictly forward, so the graph is an
                // in-forest by construction; shared successors give fan-in.
                let successors: Vec<Option<usize>> = (0..n)
                    .map(|i| {
                        if i + 1 == n || rng.gen_bool(root_probability.clamp(0.0, 1.0)) {
                            None
                        } else {
                            Some(rng.gen_range(i + 1..n))
                        }
                    })
                    .collect();
                Application::from_successors(&types, &successors)?
            }
        };

        // Processing times per (type, machine).
        let (tmin, tmax) = c.time_range;
        let type_times: Vec<Vec<f64>> = (0..p)
            .map(|_| {
                if c.homogeneous_machines {
                    let t = rng.gen_range(tmin..=tmax);
                    vec![t; m]
                } else {
                    (0..m).map(|_| rng.gen_range(tmin..=tmax)).collect()
                }
            })
            .collect();
        let platform = Platform::from_type_times(m, type_times)?;

        // Failure rates.
        let (fmin, fmax) = c.failure_range;
        let draw = |rng: &mut StdRng| -> f64 {
            if fmax > fmin {
                rng.gen_range(fmin..fmax)
            } else {
                fmin
            }
        };
        let failures = match c.failure_structure {
            FailureStructure::PerTaskAndMachine => FailureModel::from_matrix(
                (0..n)
                    .map(|_| (0..m).map(|_| draw(rng)).collect())
                    .collect(),
                m,
            )?,
            FailureStructure::PerTask => {
                let rates: Vec<FailureRate> = (0..n)
                    .map(|_| FailureRate::new(draw(rng)))
                    .collect::<Result<_>>()?;
                FailureModel::task_dependent(&rates, m)
            }
            FailureStructure::PerMachine => {
                let rates: Vec<FailureRate> = (0..m)
                    .map(|_| FailureRate::new(draw(rng)))
                    .collect::<Result<_>>()?;
                FailureModel::machine_dependent(&rates, n)
            }
            FailureStructure::Constant(f) => FailureModel::uniform(n, m, FailureRate::new(f)?),
        };

        Instance::new(app, platform, failures)
    }

    /// Generates a batch of instances with consecutive derived seeds.
    pub fn generate_batch(&self, base_seed: u64, count: usize) -> Result<Vec<Instance>> {
        (0..count)
            .map(|k| self.generate(base_seed.wrapping_add(k as u64).wrapping_mul(0x9E37_79B9)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_instances_respect_the_configuration() {
        let config = GeneratorConfig::paper_standard(40, 10, 5);
        let generator = InstanceGenerator::new(config);
        let inst = generator.generate(1).unwrap();
        assert_eq!(inst.task_count(), 40);
        assert_eq!(inst.machine_count(), 10);
        assert_eq!(inst.type_count(), 5);
        assert!(inst.application().is_linear_chain());
        for task in inst.application().tasks() {
            for u in inst.platform().machines() {
                let w = inst.time(task.id, u);
                assert!((100.0..=1000.0).contains(&w));
                let f = inst.failure(task.id, u).value();
                assert!((0.005..=0.02).contains(&f));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let generator = InstanceGenerator::new(GeneratorConfig::paper_standard(10, 4, 2));
        let a = generator.generate(7).unwrap();
        let b = generator.generate(7).unwrap();
        assert_eq!(a, b);
        let c = generator.generate(8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn high_failure_configuration_widens_the_range() {
        let generator = InstanceGenerator::new(GeneratorConfig::paper_high_failure(30, 10, 5));
        let inst = generator.generate(3).unwrap();
        let mut max_f: f64 = 0.0;
        for task in inst.application().tasks() {
            for u in inst.platform().machines() {
                max_f = max_f.max(inst.failure(task.id, u).value());
            }
        }
        assert!(
            max_f > 0.02,
            "high-failure draws should exceed the standard 2% cap"
        );
        assert!(max_f < 0.10);
    }

    #[test]
    fn task_attached_failures_are_machine_independent() {
        let generator = InstanceGenerator::new(GeneratorConfig::paper_task_failures(20, 20, 5));
        let inst = generator.generate(11).unwrap();
        assert!(inst.failures().is_task_dependent_only());
    }

    #[test]
    fn per_machine_and_constant_structures() {
        let mut config = GeneratorConfig::paper_standard(10, 5, 2);
        config.failure_structure = FailureStructure::PerMachine;
        let inst = InstanceGenerator::new(config).generate(5).unwrap();
        assert!(inst.failures().is_machine_dependent_only());

        config.failure_structure = FailureStructure::Constant(0.01);
        let inst = InstanceGenerator::new(config).generate(5).unwrap();
        assert!(inst.failures().is_task_dependent_only());
        assert!(inst.failures().is_machine_dependent_only());
        assert_eq!(inst.failure(TaskId(0), MachineId(0)).value(), 0.01);
    }

    #[test]
    fn homogeneous_platform_option() {
        let mut config = GeneratorConfig::paper_standard(10, 6, 3);
        config.homogeneous_machines = true;
        let inst = InstanceGenerator::new(config).generate(2).unwrap();
        for ty in 0..3 {
            let times = inst.platform().type_times(TaskTypeId(ty));
            assert!(times.iter().all(|&t| t == times[0]));
        }
    }

    #[test]
    fn every_type_appears_when_tasks_are_plentiful() {
        let generator = InstanceGenerator::new(GeneratorConfig::paper_standard(50, 10, 5));
        for seed in 0..5 {
            let inst = generator.generate(seed).unwrap();
            let groups = inst.application().tasks_by_type();
            assert_eq!(groups.len(), 5);
            assert!(groups.iter().all(|g| !g.is_empty()));
        }
    }

    #[test]
    fn forest_shape_draws_valid_in_forests() {
        let generator = InstanceGenerator::new(GeneratorConfig::standard_in_forest(40, 8, 3));
        let mut saw_multiple_roots = false;
        let mut saw_fan_in = false;
        for seed in 0..5 {
            let inst = generator.generate(seed).unwrap();
            let app = inst.application();
            assert_eq!(app.task_count(), 40);
            assert!(!app.is_linear_chain());
            // Successors only point forward (in-forest by construction).
            for task in app.tasks() {
                if let Some(succ) = app.successor(task.id) {
                    assert!(succ.index() > task.id.index());
                }
            }
            saw_multiple_roots |= app.sinks().count() > 1;
            saw_fan_in |= app.tasks().any(|t| app.predecessors(t.id).len() > 1);
            // Same seed, same instance.
            let again = generator.generate(seed).unwrap();
            assert_eq!(format!("{inst:?}"), format!("{again:?}"));
        }
        assert!(saw_multiple_roots, "15% roots must yield multi-root draws");
        assert!(saw_fan_in, "random successors must produce joins");
    }

    #[test]
    fn batches_produce_distinct_instances() {
        let generator = InstanceGenerator::new(GeneratorConfig::paper_standard(8, 4, 2));
        let batch = generator.generate_batch(1, 5).unwrap();
        assert_eq!(batch.len(), 5);
        let distinct: std::collections::HashSet<String> =
            batch.iter().map(|i| format!("{i:?}")).collect();
        assert!(distinct.len() > 1);
    }
}
