//! # mf-sim — instance generation and discrete-event simulation
//!
//! The paper's evaluation (§7) is driven by a C++ simulator that draws random
//! platforms and applications and evaluates the heuristics on them. This crate
//! provides the equivalent substrate:
//!
//! * [`generator`] — seeded random instance generators reproducing the paper's
//!   experimental setup (processing times uniform in `[100, 1000]` ms, failure
//!   rates uniform in `[0.5%, 2%]` or `[0, 10%]`, task-attached variants, …);
//! * [`factory`] — a discrete-event simulation of the production line itself:
//!   products physically flow through machines, are destroyed with probability
//!   `f_{i,u}` and counted at the output. The simulator validates that the
//!   analytic period used by the optimizers matches the long-run behaviour of
//!   the stochastic system;
//! * [`validate`] — helpers comparing analytic and simulated throughput.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod factory;
pub mod generator;
pub mod validate;

pub use factory::{FactorySimulation, SimulationConfig, SimulationReport};
pub use generator::{ApplicationShape, FailureStructure, GeneratorConfig, InstanceGenerator};
pub use validate::{validate_mapping, ValidationReport};
