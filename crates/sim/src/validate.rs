//! Comparison of analytic periods with simulated throughput.

use crate::factory::{FactorySimulation, SimulationConfig};
use mf_core::prelude::*;

/// Side-by-side comparison of the analytic model and the discrete-event
/// simulation for one mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Analytic period of the mapping (ms per product).
    pub analytic_period: f64,
    /// Period measured by the simulation (ms per product).
    pub simulated_period: f64,
    /// `|simulated − analytic| / analytic`.
    pub relative_error: f64,
    /// Products output during the simulation.
    pub produced: u64,
}

impl ValidationReport {
    /// `true` if the simulation confirms the analytic period within `tolerance`
    /// (relative).
    pub fn agrees_within(&self, tolerance: f64) -> bool {
        self.relative_error <= tolerance
    }
}

/// Simulates `mapping` on `instance` and compares the measured period with the
/// analytic one.
pub fn validate_mapping(
    instance: &Instance,
    mapping: &Mapping,
    config: SimulationConfig,
) -> Result<ValidationReport> {
    let analytic_period = instance.period(mapping)?.value();
    let report = FactorySimulation::new(instance, mapping, config).run()?;
    let relative_error = (report.measured_period - analytic_period).abs() / analytic_period;
    Ok(ValidationReport {
        analytic_period,
        simulated_period: report.measured_period,
        relative_error,
        produced: report.produced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, InstanceGenerator};

    #[test]
    fn validation_agrees_on_generated_instances() {
        let generator = InstanceGenerator::new(GeneratorConfig::paper_standard(8, 4, 2));
        let instance = generator.generate(17).unwrap();
        // A simple valid specialized mapping: one machine per type.
        let assignment: Vec<usize> = instance
            .application()
            .tasks()
            .map(|t| t.ty.index())
            .collect();
        let mapping = Mapping::from_indices(&assignment, instance.machine_count()).unwrap();
        let report = validate_mapping(
            &instance,
            &mapping,
            SimulationConfig {
                target_products: 3_000,
                warmup_products: 200,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.produced >= 3_000);
        assert!(
            report.agrees_within(0.10),
            "analytic {} vs simulated {} (error {:.3})",
            report.analytic_period,
            report.simulated_period,
            report.relative_error
        );
    }

    #[test]
    fn relative_error_is_reported() {
        let report = ValidationReport {
            analytic_period: 100.0,
            simulated_period: 103.0,
            relative_error: 0.03,
            produced: 10,
        };
        assert!(report.agrees_within(0.05));
        assert!(!report.agrees_within(0.01));
    }
}
