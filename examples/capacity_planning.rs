//! Capacity planning: how many machines does a target throughput need?
//!
//! The factory must ship one micro-component every 400 ms. Starting from the
//! minimum platform (one machine per task type), machines are added one by one
//! and the line is re-mapped with the paper's heuristics until the throughput
//! target is met — the kind of what-if study the throughput model is meant to
//! answer for a production engineer.
//!
//! ```bash
//! cargo run --release --example capacity_planning
//! ```

use microfactory::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TARGET_PERIOD_MS: f64 = 400.0;

fn main() -> Result<()> {
    let mut rng = StdRng::seed_from_u64(2010);

    // A 24-task chain over 4 operation types.
    let types: Vec<usize> = (0..24).map(|i| i % 4).collect();
    let app = Application::linear_chain(&types)?;

    // Candidate machine pool: each machine has its own speed profile per type
    // and its own reliability; we may install up to 20 of them.
    let pool_times: Vec<Vec<f64>> = (0..4)
        .map(|_| (0..20).map(|_| rng.gen_range(100.0..1000.0)).collect())
        .collect();
    let pool_failures: Vec<Vec<f64>> = (0..24)
        .map(|_| (0..20).map(|_| rng.gen_range(0.005..0.02)).collect())
        .collect();

    println!("target: one product every {TARGET_PERIOD_MS} ms\n");
    println!("machines   best heuristic   period (ms)   throughput (/s)");

    for m in 4..=20 {
        // Install the first m machines of the pool.
        let platform =
            Platform::from_type_times(m, pool_times.iter().map(|row| row[..m].to_vec()).collect())?;
        let failures = FailureModel::from_matrix(
            pool_failures.iter().map(|row| row[..m].to_vec()).collect(),
            m,
        )?;
        let instance = Instance::new(app.clone(), platform, failures)?;

        // Best heuristic mapping for this platform size.
        let mut best: Option<(String, f64)> = None;
        for heuristic in all_paper_heuristics(1) {
            if let Ok(period) = heuristic.period(&instance) {
                let value = period.value();
                if best.as_ref().map_or(true, |(_, p)| value < *p) {
                    best = Some((heuristic.name().to_string(), value));
                }
            }
        }
        let (name, period) = best.expect("every heuristic handles m >= p");
        println!(
            "{m:>8}   {name:<14}   {period:>10.1}   {:>12.3}",
            1000.0 / period
        );

        if period <= TARGET_PERIOD_MS {
            println!(
                "\n=> {m} machines are enough: {name} reaches {period:.1} ms (target {TARGET_PERIOD_MS} ms)."
            );
            return Ok(());
        }
    }
    println!("\n=> even 20 machines cannot reach the target; the chain itself is too slow.");
    Ok(())
}
