//! Failure sensitivity: when does ignoring failures stop being a good idea?
//!
//! The paper concludes that H4w — which ignores failure rates entirely — is
//! the best heuristic under its 0.5–2% failure regime ("if we produce fast
//! enough we overcome the faults"). This example sweeps the failure intensity
//! from 0% to 30% and compares H4w with the failure-aware H4 and the
//! binary-search H2 to show where that conclusion stops holding.
//!
//! ```bash
//! cargo run --release --example failure_sensitivity
//! ```

use microfactory::prelude::*;

fn main() -> Result<()> {
    println!("max failure   H2 (ms)     H4 (ms)     H4w (ms)   H4w/H4");
    for &fmax in &[0.0f64, 0.02, 0.05, 0.10, 0.20, 0.30] {
        let config = GeneratorConfig {
            failure_range: (0.0, fmax.max(1e-9)),
            ..GeneratorConfig::paper_standard(40, 10, 4)
        };
        let generator = InstanceGenerator::new(config);

        // Average the three heuristics over a batch of instances.
        let mut sums = [0.0f64; 3];
        let reps = 20;
        for seed in 0..reps {
            let instance = generator.generate(1000 + seed)?;
            let h2 = H2BinaryPotential::default()
                .period(&instance)
                .expect("valid instance");
            let h4 = H4BestPerformance.period(&instance).expect("valid instance");
            let h4w = H4wFastestMachine.period(&instance).expect("valid instance");
            sums[0] += h2.value();
            sums[1] += h4.value();
            sums[2] += h4w.value();
        }
        let [h2, h4, h4w] = sums.map(|s| s / reps as f64);
        println!(
            "{:>10.0}%   {h2:>8.1}   {h4:>8.1}   {h4w:>8.1}   {:>6.3}",
            fmax * 100.0,
            h4w / h4
        );
    }
    println!(
        "\nReading: around the paper's regime (≤ 2%) H4w and H4 are within noise of each\n\
         other — speed is all that matters. As failures grow past ~10%, the failure-aware\n\
         H4 pulls ahead and the binary-search H2 becomes the most robust, matching the\n\
         paper's high-failure experiment (Figure 8)."
    );
    Ok(())
}
