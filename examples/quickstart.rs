//! Quickstart: build a production line, map it, measure the throughput.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use microfactory::prelude::*;

fn main() -> Result<()> {
    // 1. Describe the application: a linear chain of 8 tasks using 3 operation
    //    types (e.g. pick, glue, inspect), as in the paper's Figure 1 but
    //    without the join.
    let app = Application::linear_chain(&[0, 1, 2, 0, 1, 2, 0, 2])?;

    // 2. Describe the platform: 5 cells with heterogeneous speeds per type (ms).
    let platform = Platform::from_type_times(
        5,
        vec![
            vec![120.0, 300.0, 450.0, 200.0, 180.0], // type 0: pick
            vec![400.0, 150.0, 220.0, 380.0, 260.0], // type 1: glue
            vec![250.0, 270.0, 130.0, 300.0, 210.0], // type 2: inspect
        ],
    )?;

    // 3. Describe the failure model: each (task, machine) couple has its own
    //    probability of destroying the product.
    let failures = FailureModel::from_matrix(
        (0..8)
            .map(|i| {
                (0..5)
                    .map(|u| 0.005 + 0.002 * ((i + u) % 7) as f64)
                    .collect()
            })
            .collect(),
        5,
    )?;

    let instance = Instance::new(app, platform, failures)?;

    // 4. Run every heuristic of the paper and report the periods.
    println!("heuristic   period (ms)   throughput (products/s)");
    let mut best: Option<(String, Mapping, f64)> = None;
    for heuristic in all_paper_heuristics(42) {
        let mapping = heuristic
            .map(&instance)
            .expect("m >= p, so every heuristic succeeds");
        let period = instance.period(&mapping)?.value();
        println!(
            "{:<12}{:>10.1}   {:>10.3}",
            heuristic.name(),
            period,
            1000.0 / period
        );
        if best.as_ref().map_or(true, |(_, _, p)| period < *p) {
            best = Some((heuristic.name().to_string(), mapping, period));
        }
    }
    let (name, mapping, period) = best.expect("at least one heuristic ran");

    // 5. Compare with the exact optimum (the instance is small).
    let optimum = branch_and_bound(&instance, BnbConfig::default())?;
    println!(
        "\nbest heuristic: {name} at {period:.1} ms — exact optimum {:.1} ms (ratio {:.3})",
        optimum.period.value(),
        period / optimum.period.value()
    );

    // 6. How many raw products must be fed per finished product?
    let demands = instance.demands(&mapping)?;
    for (task, count) in demands.required_inputs(instance.application(), 100) {
        println!("feed {count} raw products at {task} to ship 100 finished products");
    }

    // 7. Cross-check the analytic period against the discrete-event simulator.
    let report = FactorySimulation::new(
        &instance,
        &mapping,
        SimulationConfig {
            target_products: 2_000,
            ..Default::default()
        },
    )
    .run()?;
    println!(
        "simulated period: {:.1} ms over {} products (analytic {:.1} ms)",
        report.measured_period, report.produced, period
    );
    Ok(())
}
