//! Reproduce a condensed version of every figure of the paper in one run.
//!
//! This is a smaller, single-binary alternative to the per-figure binaries of
//! `mf-experiments` (which accept `--full` for the complete protocol): a few
//! repetitions per point and a coarser sweep, enough to see every curve's
//! shape in a couple of minutes.
//!
//! ```bash
//! cargo run --release --example reproduce_figures
//! ```

use microfactory::experiments::figures;
use microfactory::experiments::ExperimentConfig;

fn main() {
    let config = ExperimentConfig {
        repetitions: 10,
        ..ExperimentConfig::quick()
    };

    let reports = [
        figures::fig5::run_with_tasks(&config, vec![50, 100, 150]),
        figures::fig6::run_with_tasks(&config, vec![20, 60, 100]),
        figures::fig7::run_with_tasks(&config, vec![100, 150, 200]),
        figures::fig8::run_with_tasks(&config, vec![20, 60, 100]),
        figures::fig9::run_with_types(&config, vec![20, 60, 100]),
        figures::fig10::run_with_tasks(&config, vec![4, 8, 12]),
        figures::fig11::run_with_tasks(&config, vec![4, 8, 12]),
        figures::fig12::run_with_tasks(&config, vec![6, 10, 14]),
    ];
    for report in &reports {
        println!("{}", report.to_table());
    }

    let summary = figures::summary::run_with(&config, vec![30, 60, 90], vec![6, 8, 10]);
    println!("{}", summary.to_table());
}
