//! A micro-watch assembly line with a join, exercising the in-tree support.
//!
//! Two sub-assemblies are produced in parallel — the movement (gear train +
//! escapement) and the case (machining + polishing) — and merged before a
//! final inspection, exactly the kind of tree-shaped application the paper's
//! Figure 1 sketches. The example compares the heuristics, inspects the
//! critical machine and shows how failures inflate the number of raw parts
//! needed.
//!
//! ```bash
//! cargo run --release --example watch_assembly_line
//! ```

use microfactory::prelude::*;

fn main() -> Result<()> {
    // Task graph (indices / types):
    //   0 gear-train(cut=0)      -> 1 escapement(assemble=1) ---\
    //                                                            4 merge(assemble=1) -> 5 inspect(2)
    //   2 case-machining(cut=0)  -> 3 polishing(3) -------------/
    let mut builder = ApplicationBuilder::new();
    let gear = builder.add_task(0);
    let escapement = builder.add_task(1);
    let case = builder.add_task(0);
    let polish = builder.add_task(3);
    let merge = builder.add_task(1);
    let inspect = builder.add_task(2);
    builder.add_dependency(gear, escapement)?;
    builder.add_dependency(escapement, merge)?;
    builder.add_dependency(case, polish)?;
    builder.add_dependency(polish, merge)?;
    builder.add_dependency(merge, inspect)?;
    let app = builder.build()?;

    // Six cells; cutting cells are fast at type 0 but clumsy at assembly, etc.
    let platform = Platform::from_type_times(
        6,
        vec![
            vec![110.0, 140.0, 520.0, 480.0, 300.0, 350.0], // cut
            vec![600.0, 580.0, 160.0, 190.0, 420.0, 400.0], // assemble
            vec![350.0, 300.0, 340.0, 310.0, 120.0, 450.0], // inspect
            vec![280.0, 260.0, 330.0, 300.0, 500.0, 150.0], // polish
        ],
    )?;

    // Micro-assembly steps lose parts much more often than cutting.
    let per_task_base = [0.004, 0.03, 0.004, 0.01, 0.05, 0.002];
    let failures = FailureModel::from_matrix(
        (0..app.task_count())
            .map(|i| {
                (0..6)
                    .map(|u| per_task_base[i] * (1.0 + 0.3 * (u % 3) as f64))
                    .collect()
            })
            .collect(),
        6,
    )?;
    let instance = Instance::new(app, platform, failures)?;

    println!("== Micro-watch assembly line (6 tasks, join at the merge step) ==\n");
    println!("heuristic   period (ms)   critical machine");
    let mut best: Option<(Mapping, f64)> = None;
    for heuristic in all_paper_heuristics(7) {
        let mapping = heuristic
            .map(&instance)
            .expect("enough machines for every type");
        let breakdown = instance.machine_periods(&mapping)?;
        let period = breakdown.system_period().value();
        let critical = breakdown.critical_machines(1e-9);
        println!(
            "{:<12}{:>10.1}   {}",
            heuristic.name(),
            period,
            critical
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        if best.as_ref().map_or(true, |(_, p)| period < *p) {
            best = Some((mapping, period));
        }
    }
    let (mapping, period) = best.expect("heuristics ran");

    // Exact optimum for reference.
    let optimum = branch_and_bound(&instance, BnbConfig::default())?;
    println!(
        "\nexact optimum: {:.1} ms (best heuristic at ratio {:.3})",
        optimum.period.value(),
        period / optimum.period.value()
    );

    // Raw-part budget: how many gear blanks and case blanks per 1000 watches?
    let demands = instance.demands(&mapping)?;
    println!("\nraw parts needed to ship 1000 watches:");
    for (task, count) in demands.required_inputs(instance.application(), 1000) {
        println!("  {task}: {count} blanks");
    }

    // Validate the analytic period with the discrete-event simulator.
    let report = FactorySimulation::new(
        &instance,
        &mapping,
        SimulationConfig {
            target_products: 5_000,
            warmup_products: 200,
            ..Default::default()
        },
    )
    .run()?;
    println!(
        "\nsimulation: {} watches produced, measured period {:.1} ms vs analytic {:.1} ms",
        report.produced, report.measured_period, period
    );
    for task in instance.application().tasks() {
        if let Some(observed) = report.observed_failure_rate(task.id) {
            println!(
                "  {}: observed loss rate {:.2}% (model {:.2}%)",
                task.id,
                observed * 100.0,
                instance
                    .failure(task.id, mapping.machine_of(task.id))
                    .value()
                    * 100.0
            );
        }
    }
    Ok(())
}
