//! Workload splitting (the paper's future-work extension, §8).
//!
//! The paper closes by suggesting that the instances of one task could be
//! processed by several machines, dividing the workload to improve the
//! throughput. This example quantifies the idea: it maps a chain with the
//! best classical heuristic (H4w), then re-balances every task's products
//! across the machines dedicated to its type (H5), and reports how much
//! period the splitting recovers on increasingly unbalanced platforms.
//!
//! ```bash
//! cargo run --release --example workload_splitting
//! ```

use microfactory::prelude::*;

fn main() -> Result<()> {
    println!("type imbalance   H4w period (ms)   H5 split period (ms)   improvement");
    for &skew in &[1.0f64, 2.0, 4.0, 8.0] {
        // Two types, 12 tasks, 6 machines. Type-0 work is `skew` times heavier
        // than type-1 work, so a classical specialized mapping leaves the
        // type-0 machines overloaded while type-1 machines idle.
        let types: Vec<usize> = (0..12).map(|i| if i % 3 == 0 { 1 } else { 0 }).collect();
        let app = Application::linear_chain(&types)?;
        let platform = Platform::from_type_times(
            6,
            vec![
                (0..6).map(|u| skew * (120.0 + 40.0 * u as f64)).collect(),
                (0..6).map(|u| 100.0 + 30.0 * u as f64).collect(),
            ],
        )?;
        let failures = FailureModel::uniform(12, 6, FailureRate::new(0.01)?);
        let instance = Instance::new(app, platform, failures)?;

        let base = H4wFastestMachine.map(&instance).expect("m >= p");
        let base_period = instance.period(&base)?.value();
        let split = H5WorkloadSplit
            .split_from(&instance, &base)
            .expect("base is specialized");
        let split_period = split.period(&instance)?.value();

        println!(
            "{skew:>14.0}x   {base_period:>15.1}   {split_period:>20.1}   {:>10.1}%",
            100.0 * (base_period - split_period) / base_period
        );
    }
    println!(
        "\nSplitting never hurts (it strictly generalises the classical mapping) and the\n\
         gain grows with the imbalance between machines of the same type — the effect the\n\
         paper anticipated in its conclusion."
    );
    Ok(())
}
