//! # microfactory — throughput optimization for micro-factories subject to
//! task and machine failures
//!
//! This crate is the facade of a full reproduction of *Benoit, Dobrila, Nicod,
//! Philippe, "Throughput optimization for micro-factories subject to task and
//! machine failures"* (INRIA RR-7479 / IPDPS 2010). It re-exports the public
//! API of the underlying crates:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`model`] | `mf-core` | applications, platforms, failure models, mappings, periods |
//! | [`heuristics`] | `mf-heuristics` | the six polynomial heuristics H1…H4f + the strategy-driven search engine (H6 annealed climb, steepest descent, tabu) |
//! | [`exact`] | `mf-exact` | MIP, branch-and-bound, brute force, optimal one-to-one |
//! | [`lp`] | `mf-lp` | simplex + MIP branch-and-bound substrate |
//! | [`matching`] | `mf-matching` | Hungarian, Hopcroft–Karp, bottleneck assignment |
//! | [`sim`] | `mf-sim` | instance generators + discrete-event factory simulation |
//! | [`experiments`] | `mf-experiments` | reproduction harness for every figure of §7 |
//!
//! ## Quickstart
//!
//! ```
//! use microfactory::prelude::*;
//!
//! // A 6-task production chain with 2 operation types on 4 machines.
//! let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(6, 4, 2))
//!     .generate(42)
//!     .unwrap();
//!
//! // Map it with the paper's best heuristic and measure the throughput.
//! let mapping = H4wFastestMachine.map(&instance).unwrap();
//! let period = instance.period(&mapping).unwrap();
//! assert!(period.value() > 0.0);
//!
//! // Compare against the exact optimum (small instance, so this is fast).
//! let optimum = branch_and_bound(&instance, BnbConfig::default()).unwrap();
//! assert!(period.value() >= optimum.period.value() - 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// The core model (re-export of [`mf_core`]).
pub mod model {
    pub use mf_core::*;
}

/// The mapping heuristics (re-export of [`mf_heuristics`]).
pub mod heuristics {
    pub use mf_heuristics::*;
}

/// The exact solvers (re-export of [`mf_exact`]).
pub mod exact {
    pub use mf_exact::*;
}

/// The LP / MIP substrate (re-export of [`mf_lp`]).
pub mod lp {
    pub use mf_lp::*;
}

/// The bipartite matching substrate (re-export of [`mf_matching`]).
pub mod matching {
    pub use mf_matching::*;
}

/// Instance generation and discrete-event simulation (re-export of [`mf_sim`]).
pub mod sim {
    pub use mf_sim::*;
}

/// The experiment harness (re-export of [`mf_experiments`]).
///
/// Only present with the default `experiments` feature; disable it
/// (`default-features = false`) for a lean model + solvers build.
#[cfg(feature = "experiments")]
pub mod experiments {
    pub use mf_experiments::*;
}

/// One-stop prelude with the most commonly used items of every layer.
pub mod prelude {
    pub use mf_core::prelude::*;
    pub use mf_exact::{
        branch_and_bound, optimal_one_to_one_bottleneck, optimal_one_to_one_chain_homogeneous,
        solve_specialized_mip, BnbConfig, MipConfig,
    };
    pub use mf_heuristics::{
        all_paper_heuristics, paper_heuristic, H1Random, H2BinaryPotential, H3BinaryHeterogeneity,
        H4BestPerformance, H4fReliableMachine, H4wFastestMachine, H5WorkloadSplit, H6LocalSearch,
        Heuristic, LocalSearchConfig, RandomMapping, SearchEngine, SearchHeuristic, SearchStrategy,
        SteepestDescent, TabuSearch,
    };
    pub use mf_sim::{FactorySimulation, GeneratorConfig, InstanceGenerator, SimulationConfig};
}
