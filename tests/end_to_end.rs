//! Cross-crate integration tests: generator → heuristics → exact solvers →
//! discrete-event simulation, exercised through the facade crate.

use microfactory::prelude::*;

/// The full tool-chain on one generated instance: every heuristic produces a
/// valid specialized mapping, the exact optimum bounds them all from below,
/// and the simulator confirms the analytic period of the best mapping.
#[test]
fn generator_heuristics_exact_and_simulation_agree() {
    let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(10, 5, 3))
        .generate(2024)
        .unwrap();

    let mut best: Option<(Mapping, f64)> = None;
    for heuristic in all_paper_heuristics(3) {
        let mapping = heuristic.map(&instance).unwrap();
        assert!(
            instance.is_specialized(&mapping),
            "{} not specialized",
            heuristic.name()
        );
        let period = instance.period(&mapping).unwrap().value();
        assert!(period > 0.0);
        if best.as_ref().map_or(true, |(_, p)| period < *p) {
            best = Some((mapping, period));
        }
    }
    let (best_mapping, best_period) = best.unwrap();

    let optimum = branch_and_bound(&instance, BnbConfig::default()).unwrap();
    assert!(optimum.proven_optimal);
    assert!(optimum.period.value() <= best_period + 1e-9);
    // The paper's headline: the best heuristic lands within a small factor of
    // the optimum (1.33 on average in the paper; allow 2x on one instance).
    assert!(best_period <= optimum.period.value() * 2.0);

    let report = FactorySimulation::new(
        &instance,
        &best_mapping,
        SimulationConfig {
            target_products: 4_000,
            warmup_products: 200,
            ..Default::default()
        },
    )
    .run()
    .unwrap();
    let relative = (report.measured_period - best_period).abs() / best_period;
    assert!(
        relative < 0.15,
        "simulated period {} deviates from analytic {best_period} by {relative:.3}",
        report.measured_period
    );
}

/// The MIP formulation (on the simplex substrate), the combinatorial
/// branch-and-bound and brute force all agree on small instances.
#[test]
fn all_exact_solvers_agree() {
    use microfactory::exact::{brute_force_specialized, MipSolveStatus};

    for seed in [1u64, 2, 3] {
        let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(5, 3, 2))
            .generate(seed)
            .unwrap();
        let brute = brute_force_specialized(&instance).unwrap();
        let bnb = branch_and_bound(&instance, BnbConfig::default()).unwrap();
        let mip = solve_specialized_mip(&instance, MipConfig::default()).unwrap();

        assert!(bnb.proven_optimal);
        assert_eq!(mip.status, MipSolveStatus::Optimal);
        let reference = brute.period.value();
        assert!((bnb.period.value() - reference).abs() < 1e-6, "seed {seed}");
        assert!(
            (mip.period.unwrap().value() - reference).abs() / reference < 1e-4,
            "seed {seed}"
        );
    }
}

/// The paper's qualitative conclusions hold on a batch of generated instances:
/// H4w beats the random heuristic H1 and the reliability-only H4f on average.
#[test]
fn paper_conclusions_hold_on_average() {
    let generator = InstanceGenerator::new(GeneratorConfig::paper_standard(60, 20, 5));
    let mut h1_total = 0.0;
    let mut h4w_total = 0.0;
    let mut h4f_total = 0.0;
    let reps = 12;
    for seed in 0..reps {
        let instance = generator.generate(seed).unwrap();
        h1_total += H1Random::new(seed).period(&instance).unwrap().value();
        h4w_total += H4wFastestMachine.period(&instance).unwrap().value();
        h4f_total += H4fReliableMachine.period(&instance).unwrap().value();
    }
    assert!(
        h4w_total < h1_total,
        "H4w (total {h4w_total}) should beat the random heuristic (total {h1_total})"
    );
    assert!(
        h4w_total < h4f_total,
        "H4w (total {h4w_total}) should beat the reliability-only heuristic (total {h4f_total})"
    );
}

/// One-to-one optimum (bottleneck assignment) versus the specialized optimum:
/// grouping tasks can only help.
#[test]
fn specialized_optimum_never_worse_than_one_to_one_optimum() {
    let instance = InstanceGenerator::new(GeneratorConfig::paper_task_failures(7, 8, 3))
        .generate(99)
        .unwrap();
    let oto = optimal_one_to_one_bottleneck(&instance).unwrap();
    let specialized = branch_and_bound(&instance, BnbConfig::default()).unwrap();
    assert!(specialized.proven_optimal);
    assert!(specialized.period.value() <= oto.period.value() + 1e-9);
}

/// The model types are cheap to clone and evaluation is referentially
/// transparent: a cloned instance reports the same period for the same mapping.
#[test]
fn cloned_instances_report_identical_periods() {
    let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(6, 4, 2))
        .generate(5)
        .unwrap();
    let mapping = H4wFastestMachine.map(&instance).unwrap();
    let cloned = instance.clone();
    assert_eq!(
        instance.period(&mapping).unwrap().value(),
        cloned.period(&mapping).unwrap().value()
    );
    assert_eq!(instance, cloned);
}
