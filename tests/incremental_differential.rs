//! Differential harness for the incremental evaluator.
//!
//! 10 000 seeded random moves and swaps across chain and in-tree instances:
//! after every committed operation — and for every what-if — the incremental
//! period must match a from-scratch `period.rs` evaluation to within 1e-9
//! (relative), the incremental demands must stay **bit-identical** to a
//! from-scratch demand computation, and the incremental critical machine must
//! be a critical machine of the full evaluation.
//!
//! The instance shapes are chosen to drive every internal path: linear chains
//! small and large (the dense ratio-scaling fast path with its prefix-mass
//! row cache), and balanced in-trees (the generic exact ancestor walk, with
//! both the tournament-tree and the linear-scan what-if branches).

use microfactory::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Total committed + what-if operations across all instances.
const TOTAL_STEPS: usize = 10_000;

fn chain_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::paper_standard(tasks, machines, types))
        .generate(seed)
        .expect("the standard generator produces valid instances")
}

/// A join-heavy in-tree instance (the generator only draws chains).
fn tree_instance(arity: usize, depth: usize, machines: usize, rng: &mut StdRng) -> Instance {
    let app = Application::balanced_in_tree(arity, depth, 3).unwrap();
    let n = app.task_count();
    let platform = Platform::from_type_times(
        machines,
        (0..app.type_count())
            .map(|_| {
                (0..machines)
                    .map(|_| rng.gen_range(100.0..1000.0))
                    .collect()
            })
            .collect(),
    )
    .unwrap();
    let failures = FailureModel::from_matrix(
        (0..n)
            .map(|_| (0..machines).map(|_| rng.gen_range(0.0..0.10)).collect())
            .collect(),
        machines,
    )
    .unwrap();
    Instance::new(app, platform, failures).unwrap()
}

/// Full-recompute oracle: period within 1e-9 relative, demands bit-identical,
/// critical machine contained in the full critical set.
fn assert_agrees(eval: &IncrementalEvaluator<'_>, instance: &Instance, context: &str) {
    let mapping = eval.mapping();
    let full = instance.machine_periods(&mapping).unwrap();
    let scale = full.system_period().value().max(1.0);
    assert!(
        (eval.period().value() - full.system_period().value()).abs() <= 1e-9 * scale,
        "{context}: incremental period {} vs full {}",
        eval.period().value(),
        full.system_period().value()
    );
    for (t, &x) in full.demands().as_slice().iter().enumerate() {
        assert!(
            eval.demand_of(TaskId(t)) == x,
            "{context}: demand of T{} drifted ({} vs {x})",
            t + 1,
            eval.demand_of(TaskId(t))
        );
    }
    let critical = eval.critical_machine();
    assert!(
        full.critical_machines(1e-9 * scale).contains(&critical),
        "{context}: {critical} (load {}) is not critical in the full evaluation (period {})",
        full.of(critical).value(),
        full.system_period().value()
    );
}

/// One what-if must match the full evaluation of the rebuilt candidate
/// mapping and must leave the evaluator state untouched.
fn assert_what_if_agrees(
    what_if: Evaluation,
    instance: &Instance,
    candidate: &Mapping,
    context: &str,
) {
    let full = instance.machine_periods(candidate).unwrap();
    let scale = full.system_period().value().max(1.0);
    assert!(
        (what_if.period.value() - full.system_period().value()).abs() <= 1e-9 * scale,
        "{context}: what-if period {} vs full {}",
        what_if.period.value(),
        full.system_period().value()
    );
    assert!(
        full.critical_machines(1e-9 * scale)
            .contains(&what_if.critical_machine),
        "{context}: what-if critical machine {} is not critical in the full evaluation",
        what_if.critical_machine
    );
}

fn drive(instance: &Instance, start: &Mapping, steps: usize, rng: &mut StdRng, label: &str) {
    let n = instance.task_count();
    let m = instance.machine_count();
    let mut eval = IncrementalEvaluator::new(instance, start).unwrap();
    assert_agrees(&eval, instance, &format!("{label}: initial state"));
    for step in 0..steps {
        let task = TaskId(rng.gen_range(0..n));
        let other = TaskId(rng.gen_range(0..n));
        let machine = MachineId(rng.gen_range(0..m));
        match rng.gen_range(0..4u32) {
            // Committed move.
            0 => {
                eval.apply_move(task, machine).unwrap();
                assert_agrees(&eval, instance, &format!("{label}: step {step} move"));
            }
            // Committed swap.
            1 => {
                eval.apply_swap(task, other).unwrap();
                assert_agrees(&eval, instance, &format!("{label}: step {step} swap"));
            }
            // What-if move: verified against the rebuilt candidate mapping.
            2 => {
                let before = eval.period();
                let what_if = eval.evaluate_move(task, machine).unwrap();
                let mut assignment: Vec<usize> = eval
                    .mapping()
                    .as_slice()
                    .iter()
                    .map(|u| u.index())
                    .collect();
                assignment[task.index()] = machine.index();
                let candidate = Mapping::from_indices(&assignment, m).unwrap();
                assert_what_if_agrees(
                    what_if,
                    instance,
                    &candidate,
                    &format!("{label}: step {step} what-if move"),
                );
                assert_eq!(eval.period(), before, "{label}: step {step} mutated state");
            }
            // What-if swap.
            _ => {
                let before = eval.period();
                let what_if = eval.evaluate_swap(task, other).unwrap();
                let mut assignment: Vec<usize> = eval
                    .mapping()
                    .as_slice()
                    .iter()
                    .map(|u| u.index())
                    .collect();
                assignment.swap(task.index(), other.index());
                let candidate = Mapping::from_indices(&assignment, m).unwrap();
                assert_what_if_agrees(
                    what_if,
                    instance,
                    &candidate,
                    &format!("{label}: step {step} what-if swap"),
                );
                assert_eq!(eval.period(), before, "{label}: step {step} mutated state");
            }
        }
    }
}

#[test]
fn ten_thousand_random_moves_and_swaps_agree_with_full_recompute() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_E4E1);
    let chains = [
        (12usize, 4usize, 2usize, 0xAAu64),
        (40, 8, 3, 0xBB),
        (100, 20, 5, 0xCC),
    ];
    let per_shape = TOTAL_STEPS / 5;
    for &(n, m, p, seed) in &chains {
        let instance = chain_instance(n, m, p, seed);
        let start = H4wFastestMachine.map(&instance).unwrap();
        drive(
            &instance,
            &start,
            per_shape,
            &mut rng,
            &format!("chain n={n} m={m}"),
        );
    }
    // In-trees exercise the generic walk: m = 8 favors the scan branch,
    // m = 64 the tournament-tree update/revert branch.
    for &(arity, depth, m) in &[(2usize, 3usize, 8usize), (3, 3, 64)] {
        let instance = tree_instance(arity, depth, m, &mut rng);
        let assignment: Vec<usize> = instance
            .application()
            .tasks()
            .map(|t| t.ty.index())
            .collect();
        let start = Mapping::from_indices(&assignment, m).unwrap();
        drive(
            &instance,
            &start,
            per_shape,
            &mut rng,
            &format!("tree arity={arity} depth={depth} m={m}"),
        );
    }
}
