//! Differential harness for the incremental evaluator.
//!
//! 10 000 seeded random moves and swaps across chain and in-tree instances:
//! after every committed operation — and for every what-if — the incremental
//! period must match a from-scratch `period.rs` evaluation to within 1e-9
//! (relative), the incremental demands must stay **bit-identical** to a
//! from-scratch demand computation, and the incremental critical machine must
//! be a critical machine of the full evaluation.
//!
//! The instance shapes are chosen to drive every internal path: linear chains
//! small and large (the chain variant of the dense prefix-mass fast path),
//! balanced in-trees and random in-forests with mixed fan-in and multiple
//! roots (the forest variant — Euler-tour subtree masses, nested and
//! disjoint swap pairs, per-range row invalidation), and a machine count
//! past the dense scan limit (the exact ancestor walk, with both the
//! tournament-tree and the linear-scan what-if branches).

use microfactory::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Total committed + what-if operations across all instances.
const TOTAL_STEPS: usize = 10_000;

fn chain_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::paper_standard(tasks, machines, types))
        .generate(seed)
        .expect("the standard generator produces valid instances")
}

/// Random times and failures for any application shape.
fn dress(app: Application, machines: usize, rng: &mut StdRng) -> Instance {
    let n = app.task_count();
    let platform = Platform::from_type_times(
        machines,
        (0..app.type_count())
            .map(|_| {
                (0..machines)
                    .map(|_| rng.gen_range(100.0..1000.0))
                    .collect()
            })
            .collect(),
    )
    .unwrap();
    let failures = FailureModel::from_matrix(
        (0..n)
            .map(|_| (0..machines).map(|_| rng.gen_range(0.0..0.10)).collect())
            .collect(),
        machines,
    )
    .unwrap();
    Instance::new(app, platform, failures).unwrap()
}

/// A join-heavy in-tree instance (the generator only draws chains).
fn tree_instance(arity: usize, depth: usize, machines: usize, rng: &mut StdRng) -> Instance {
    dress(
        Application::balanced_in_tree(arity, depth, 3).unwrap(),
        machines,
        rng,
    )
}

/// A random in-forest (mixed fan-in, several roots), drawn from the shared
/// `standard_in_forest` generator configuration.
fn forest_instance(tasks: usize, machines: usize, types: usize, rng: &mut StdRng) -> Instance {
    InstanceGenerator::new(GeneratorConfig::standard_in_forest(tasks, machines, types))
        .generate(rng.next_u64())
        .expect("the forest generator produces valid instances")
}

/// Full-recompute oracle: period within 1e-9 relative, demands bit-identical,
/// critical machine contained in the full critical set.
fn assert_agrees(eval: &IncrementalEvaluator<'_>, instance: &Instance, context: &str) {
    let mapping = eval.mapping();
    let full = instance.machine_periods(&mapping).unwrap();
    let scale = full.system_period().value().max(1.0);
    assert!(
        (eval.period().value() - full.system_period().value()).abs() <= 1e-9 * scale,
        "{context}: incremental period {} vs full {}",
        eval.period().value(),
        full.system_period().value()
    );
    for (t, &x) in full.demands().as_slice().iter().enumerate() {
        assert!(
            eval.demand_of(TaskId(t)) == x,
            "{context}: demand of T{} drifted ({} vs {x})",
            t + 1,
            eval.demand_of(TaskId(t))
        );
    }
    let critical = eval.critical_machine();
    assert!(
        full.critical_machines(1e-9 * scale).contains(&critical),
        "{context}: {critical} (load {}) is not critical in the full evaluation (period {})",
        full.of(critical).value(),
        full.system_period().value()
    );
}

/// One what-if must match the full evaluation of the rebuilt candidate
/// mapping and must leave the evaluator state untouched.
fn assert_what_if_agrees(
    what_if: Evaluation,
    instance: &Instance,
    candidate: &Mapping,
    context: &str,
) {
    let full = instance.machine_periods(candidate).unwrap();
    let scale = full.system_period().value().max(1.0);
    assert!(
        (what_if.period.value() - full.system_period().value()).abs() <= 1e-9 * scale,
        "{context}: what-if period {} vs full {}",
        what_if.period.value(),
        full.system_period().value()
    );
    assert!(
        full.critical_machines(1e-9 * scale)
            .contains(&what_if.critical_machine),
        "{context}: what-if critical machine {} is not critical in the full evaluation",
        what_if.critical_machine
    );
}

fn drive(instance: &Instance, start: &Mapping, steps: usize, rng: &mut StdRng, label: &str) {
    let n = instance.task_count();
    let m = instance.machine_count();
    let mut eval = IncrementalEvaluator::new(instance, start).unwrap();
    assert_agrees(&eval, instance, &format!("{label}: initial state"));
    for step in 0..steps {
        let task = TaskId(rng.gen_range(0..n));
        let other = TaskId(rng.gen_range(0..n));
        let machine = MachineId(rng.gen_range(0..m));
        match rng.gen_range(0..4u32) {
            // Committed move.
            0 => {
                eval.apply_move(task, machine).unwrap();
                assert_agrees(&eval, instance, &format!("{label}: step {step} move"));
            }
            // Committed swap.
            1 => {
                eval.apply_swap(task, other).unwrap();
                assert_agrees(&eval, instance, &format!("{label}: step {step} swap"));
            }
            // What-if move: verified against the rebuilt candidate mapping.
            2 => {
                let before = eval.period();
                let what_if = eval.evaluate_move(task, machine).unwrap();
                let mut assignment: Vec<usize> = eval
                    .mapping()
                    .as_slice()
                    .iter()
                    .map(|u| u.index())
                    .collect();
                assignment[task.index()] = machine.index();
                let candidate = Mapping::from_indices(&assignment, m).unwrap();
                assert_what_if_agrees(
                    what_if,
                    instance,
                    &candidate,
                    &format!("{label}: step {step} what-if move"),
                );
                assert_eq!(eval.period(), before, "{label}: step {step} mutated state");
            }
            // What-if swap.
            _ => {
                let before = eval.period();
                let what_if = eval.evaluate_swap(task, other).unwrap();
                let mut assignment: Vec<usize> = eval
                    .mapping()
                    .as_slice()
                    .iter()
                    .map(|u| u.index())
                    .collect();
                assignment.swap(task.index(), other.index());
                let candidate = Mapping::from_indices(&assignment, m).unwrap();
                assert_what_if_agrees(
                    what_if,
                    instance,
                    &candidate,
                    &format!("{label}: step {step} what-if swap"),
                );
                assert_eq!(eval.period(), before, "{label}: step {step} mutated state");
            }
        }
    }
}

/// A start mapping that puts every task on the machine of its type index —
/// valid for any shape, no heuristic assumptions.
fn typed_start(instance: &Instance) -> Mapping {
    let assignment: Vec<usize> = instance
        .application()
        .tasks()
        .map(|t| t.ty.index())
        .collect();
    Mapping::from_indices(&assignment, instance.machine_count()).unwrap()
}

#[test]
fn ten_thousand_random_moves_and_swaps_agree_with_full_recompute() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_E4E1);
    let chains = [
        (12usize, 4usize, 2usize, 0xAAu64),
        (40, 8, 3, 0xBB),
        (100, 20, 5, 0xCC),
    ];
    let per_shape = TOTAL_STEPS / 8;
    for &(n, m, p, seed) in &chains {
        let instance = chain_instance(n, m, p, seed);
        let start = H4wFastestMachine.map(&instance).unwrap();
        drive(
            &instance,
            &start,
            per_shape,
            &mut rng,
            &format!("chain n={n} m={m}"),
        );
    }
    // Balanced in-trees and random in-forests (mixed fan-in, multiple
    // roots) take the forest variant of the dense fast path.
    for &(arity, depth, m) in &[(2usize, 3usize, 8usize), (3, 3, 64)] {
        let instance = tree_instance(arity, depth, m, &mut rng);
        let start = typed_start(&instance);
        {
            let eval = IncrementalEvaluator::new(&instance, &start).unwrap();
            assert!(eval.is_dense_fast_path());
            assert!(!instance.application().is_linear_chain());
        }
        drive(
            &instance,
            &start,
            per_shape,
            &mut rng,
            &format!("tree arity={arity} depth={depth} m={m}"),
        );
    }
    for &(n, m, p) in &[(30usize, 6usize, 3usize), (100, 20, 5)] {
        let instance = forest_instance(n, m, p, &mut rng);
        let start = typed_start(&instance);
        {
            let eval = IncrementalEvaluator::new(&instance, &start).unwrap();
            assert!(
                eval.is_dense_fast_path(),
                "forest n={n} m={m} must ride the dense path"
            );
            assert!(!instance.application().is_linear_chain());
        }
        drive(
            &instance,
            &start,
            per_shape,
            &mut rng,
            &format!("forest n={n} m={m}"),
        );
    }
    // Past the dense scan limit the evaluator falls back to the exact
    // ancestor walk — keep that path under differential coverage too.
    {
        let instance = forest_instance(16, 520, 3, &mut rng);
        let start = typed_start(&instance);
        {
            let eval = IncrementalEvaluator::new(&instance, &start).unwrap();
            assert!(
                !eval.is_dense_fast_path(),
                "m = 520 must exceed the dense scan limit"
            );
        }
        drive(&instance, &start, per_shape, &mut rng, "fallback m=520");
    }
}
