//! Property-based tests (proptest) on the core invariants of the system.

use microfactory::prelude::*;
use proptest::prelude::*;

/// Strategy: a random problem instance with n tasks, m machines, p types,
/// paper-like processing times and failure rates.
fn instance_strategy(
    max_tasks: usize,
    max_machines: usize,
) -> impl Strategy<Value = Instance> {
    (2usize..=max_tasks, 2usize..=max_machines)
        .prop_flat_map(move |(n, m)| {
            let p = 1usize..=m.min(n).min(4);
            (Just(n), Just(m), p, any::<u64>())
        })
        .prop_map(|(n, m, p, seed)| {
            InstanceGenerator::new(GeneratorConfig::paper_standard(n, m, p))
                .generate(seed)
                .expect("generator produces valid instances")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every heuristic returns a complete, specialized mapping whose period is
    /// finite and positive, for any instance with m ≥ p.
    #[test]
    fn heuristics_always_return_valid_specialized_mappings(
        instance in instance_strategy(24, 8),
        seed in any::<u64>(),
    ) {
        for heuristic in all_paper_heuristics(seed) {
            let mapping = heuristic.map(&instance).expect("m >= p so the heuristic succeeds");
            prop_assert_eq!(mapping.task_count(), instance.task_count());
            prop_assert!(instance.is_specialized(&mapping));
            let period = instance.period(&mapping).unwrap().value();
            prop_assert!(period.is_finite() && period > 0.0);
        }
    }

    /// The system period equals the maximum machine period, and every machine
    /// period equals the sum of `xᵢ·w_{i,u}` recomputed independently.
    #[test]
    fn period_is_the_max_of_recomputed_machine_loads(
        instance in instance_strategy(16, 6),
        seed in any::<u64>(),
    ) {
        let mapping = H1Random::new(seed).map(&instance).unwrap();
        let breakdown = instance.machine_periods(&mapping).unwrap();
        let demands = instance.demands(&mapping).unwrap();

        let mut recomputed = vec![0.0f64; instance.machine_count()];
        for task in instance.application().tasks() {
            let machine = mapping.machine_of(task.id);
            recomputed[machine.index()] +=
                demands.get(task.id) * instance.time(task.id, machine);
        }
        for u in instance.platform().machines() {
            prop_assert!((breakdown.of(u).value() - recomputed[u.index()]).abs() < 1e-9);
        }
        let max = recomputed.iter().copied().fold(0.0, f64::max);
        prop_assert!((breakdown.system_period().value() - max).abs() < 1e-9);
    }

    /// Demands are monotone: every task needs at least as many products as its
    /// successor, and at least one product.
    #[test]
    fn demands_are_monotone_along_the_chain(
        instance in instance_strategy(20, 6),
        seed in any::<u64>(),
    ) {
        let mapping = RandomMapping::new(seed).map(&instance).unwrap();
        let demands = instance.demands(&mapping).unwrap();
        for task in instance.application().tasks() {
            prop_assert!(demands.get(task.id) >= 1.0 - 1e-12);
            if let Some(succ) = instance.application().successor(task.id) {
                prop_assert!(demands.get(task.id) >= demands.get(succ) - 1e-12);
            }
        }
    }

    /// The branch-and-bound optimum is a lower bound for every heuristic, and
    /// it is itself a valid specialized mapping (small instances only).
    #[test]
    fn exact_optimum_bounds_the_heuristics(
        instance in instance_strategy(8, 4),
    ) {
        let optimum = branch_and_bound(&instance, BnbConfig::default()).unwrap();
        prop_assert!(optimum.proven_optimal);
        prop_assert!(instance.is_specialized(&optimum.mapping));
        for heuristic in all_paper_heuristics(1) {
            let period = heuristic.period(&instance).unwrap().value();
            prop_assert!(period >= optimum.period.value() - 1e-6);
        }
    }

    /// Scaling every failure rate down (towards zero) never increases the
    /// period of a fixed mapping.
    #[test]
    fn lower_failures_never_hurt_a_fixed_mapping(
        instance in instance_strategy(12, 5),
        seed in any::<u64>(),
    ) {
        let mapping = RandomMapping::new(seed).map(&instance).unwrap();
        let period_with_failures = instance.period(&mapping).unwrap().value();

        // Rebuild the same instance with all failures set to zero.
        let zero_failures = FailureModel::uniform(
            instance.task_count(),
            instance.machine_count(),
            FailureRate::ZERO,
        );
        let no_failure_instance = Instance::new(
            instance.application().clone(),
            instance.platform().clone(),
            zero_failures,
        )
        .unwrap();
        let period_without = no_failure_instance.period(&mapping).unwrap().value();
        prop_assert!(period_without <= period_with_failures + 1e-9);
    }

    /// The one-to-one bottleneck optimum (when it applies) is never better than
    /// the specialized optimum and never worse than any one-to-one mapping we
    /// can build by hand (identity assignment).
    #[test]
    fn bottleneck_one_to_one_is_sandwiched(
        n in 3usize..7,
        seed in any::<u64>(),
    ) {
        let instance = InstanceGenerator::new(GeneratorConfig::paper_task_failures(n, n + 2, 2))
            .generate(seed)
            .unwrap();
        let oto = optimal_one_to_one_bottleneck(&instance).unwrap();
        // Identity one-to-one mapping: task i on machine i.
        let identity = Mapping::from_indices(
            &(0..n).collect::<Vec<_>>(),
            instance.machine_count(),
        )
        .unwrap();
        let identity_period = instance.period(&identity).unwrap().value();
        prop_assert!(oto.period.value() <= identity_period + 1e-9);

        let specialized = branch_and_bound(&instance, BnbConfig::default()).unwrap();
        prop_assert!(specialized.period.value() <= oto.period.value() + 1e-9);
    }
}
