//! Property-based tests on the core invariants of the system.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these tests draw `CASES` random problem instances per property from a
//! seeded generator — fully deterministic, shrink-free, but covering the same
//! invariants over the same instance distribution.

use microfactory::heuristics::{H6LocalSearch, LocalSearchConfig};
use microfactory::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases per property (proptest used 48).
const CASES: u64 = 48;

/// A random problem instance with up to `max_tasks` tasks, `max_machines`
/// machines and a feasible number of types, drawn from the paper's standard
/// distribution — the same shape `proptest` sampled before.
fn random_instance(rng: &mut StdRng, max_tasks: usize, max_machines: usize) -> Instance {
    let n = rng.gen_range(2..=max_tasks);
    let m = rng.gen_range(2..=max_machines);
    let p = rng.gen_range(1..=m.min(n).min(4));
    let seed = rng.gen_range(0..=u64::MAX);
    InstanceGenerator::new(GeneratorConfig::paper_standard(n, m, p))
        .generate(seed)
        .expect("generator produces valid instances")
}

/// Every heuristic returns a complete, specialized mapping whose period is
/// finite and positive, for any instance with m ≥ p.
#[test]
fn heuristics_always_return_valid_specialized_mappings() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let instance = random_instance(&mut rng, 24, 8);
        let seed = rng.gen_range(0..=u64::MAX);
        for heuristic in all_paper_heuristics(seed) {
            let mapping = heuristic
                .map(&instance)
                .expect("m >= p so the heuristic succeeds");
            assert_eq!(mapping.task_count(), instance.task_count(), "case {case}");
            assert!(instance.is_specialized(&mapping), "case {case}");
            let period = instance.period(&mapping).unwrap().value();
            assert!(
                period.is_finite() && period > 0.0,
                "case {case}: period {period}"
            );
        }
    }
}

/// The system period equals the maximum machine period, and every machine
/// period equals the sum of `xᵢ·w_{i,u}` recomputed independently.
#[test]
fn period_is_the_max_of_recomputed_machine_loads() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let instance = random_instance(&mut rng, 16, 6);
        let seed = rng.gen_range(0..=u64::MAX);
        let mapping = H1Random::new(seed).map(&instance).unwrap();
        let breakdown = instance.machine_periods(&mapping).unwrap();
        let demands = instance.demands(&mapping).unwrap();

        let mut recomputed = vec![0.0f64; instance.machine_count()];
        for task in instance.application().tasks() {
            let machine = mapping.machine_of(task.id);
            recomputed[machine.index()] += demands.get(task.id) * instance.time(task.id, machine);
        }
        for u in instance.platform().machines() {
            assert!(
                (breakdown.of(u).value() - recomputed[u.index()]).abs() < 1e-9,
                "case {case}: machine {u:?}"
            );
        }
        let max = recomputed.iter().copied().fold(0.0, f64::max);
        assert!(
            (breakdown.system_period().value() - max).abs() < 1e-9,
            "case {case}"
        );
    }
}

/// Demands are monotone: every task needs at least as many products as its
/// successor, and at least one product.
#[test]
fn demands_are_monotone_along_the_chain() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..CASES {
        let instance = random_instance(&mut rng, 20, 6);
        let seed = rng.gen_range(0..=u64::MAX);
        let mapping = RandomMapping::new(seed).map(&instance).unwrap();
        let demands = instance.demands(&mapping).unwrap();
        for task in instance.application().tasks() {
            assert!(demands.get(task.id) >= 1.0 - 1e-12, "case {case}");
            if let Some(succ) = instance.application().successor(task.id) {
                assert!(
                    demands.get(task.id) >= demands.get(succ) - 1e-12,
                    "case {case}"
                );
            }
        }
    }
}

/// The branch-and-bound optimum is a lower bound for every heuristic, and it
/// is itself a valid specialized mapping (small instances only).
#[test]
fn exact_optimum_bounds_the_heuristics() {
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    for case in 0..CASES {
        let instance = random_instance(&mut rng, 8, 4);
        let optimum = branch_and_bound(&instance, BnbConfig::default()).unwrap();
        assert!(optimum.proven_optimal, "case {case}");
        assert!(instance.is_specialized(&optimum.mapping), "case {case}");
        for heuristic in all_paper_heuristics(1) {
            let period = heuristic.period(&instance).unwrap().value();
            assert!(
                period >= optimum.period.value() - 1e-6,
                "case {case}: {} beat the optimum ({period} < {})",
                heuristic.name(),
                optimum.period.value()
            );
        }
    }
}

/// Scaling every failure rate down (towards zero) never increases the period
/// of a fixed mapping.
#[test]
fn lower_failures_never_hurt_a_fixed_mapping() {
    let mut rng = StdRng::seed_from_u64(0xFADE);
    for case in 0..CASES {
        let instance = random_instance(&mut rng, 12, 5);
        let seed = rng.gen_range(0..=u64::MAX);
        let mapping = RandomMapping::new(seed).map(&instance).unwrap();
        let period_with_failures = instance.period(&mapping).unwrap().value();

        // Rebuild the same instance with all failures set to zero.
        let zero_failures = FailureModel::uniform(
            instance.task_count(),
            instance.machine_count(),
            FailureRate::ZERO,
        );
        let no_failure_instance = Instance::new(
            instance.application().clone(),
            instance.platform().clone(),
            zero_failures,
        )
        .unwrap();
        let period_without = no_failure_instance.period(&mapping).unwrap().value();
        assert!(period_without <= period_with_failures + 1e-9, "case {case}");
    }
}

/// The H6 local search never returns a mapping with a worse period than the
/// seed heuristic it polishes, and preserves the specialized rule, for every
/// paper heuristic on every instance.
#[test]
fn h6_never_worse_than_its_seed_heuristic() {
    let mut rng = StdRng::seed_from_u64(0x46B);
    for case in 0..CASES {
        let instance = random_instance(&mut rng, 20, 8);
        let seed = rng.gen_range(0..=u64::MAX);
        for heuristic in all_paper_heuristics(seed) {
            let seeded = heuristic.map(&instance).unwrap();
            let seed_period = instance.period(&seeded).unwrap().value();
            let config = LocalSearchConfig {
                seed: seed ^ case,
                ..LocalSearchConfig::default()
            };
            let polished = H6LocalSearch::polish(&instance, &seeded, &config).unwrap();
            let polished_period = instance.period(&polished).unwrap().value();
            assert!(
                polished_period <= seed_period + 1e-9,
                "case {case}: H6 degraded {} from {seed_period} to {polished_period}",
                heuristic.name()
            );
            assert!(
                instance.is_specialized(&polished),
                "case {case}: H6 broke the specialized rule of {}",
                heuristic.name()
            );
        }
    }
}

/// Demands are monotone in the failure rates: increasing any `f_{i,u}` never
/// decreases any task's demand under a fixed mapping.
#[test]
fn demands_never_decrease_when_a_failure_rate_increases() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for case in 0..CASES {
        let instance = random_instance(&mut rng, 16, 6);
        let seed = rng.gen_range(0..=u64::MAX);
        let mapping = RandomMapping::new(seed).map(&instance).unwrap();
        let before = instance.demands(&mapping).unwrap();

        // Bump one random f_{i,u} towards 1 (staying strictly below it).
        let i = rng.gen_range(0..instance.task_count());
        let u = rng.gen_range(0..instance.machine_count());
        let mut rows: Vec<Vec<f64>> = (0..instance.task_count())
            .map(|t| {
                (0..instance.machine_count())
                    .map(|w| instance.failure(TaskId(t), MachineId(w)).value())
                    .collect()
            })
            .collect();
        rows[i][u] += (1.0 - rows[i][u]) * rng.gen_range(0.1..0.9);
        let bumped = FailureModel::from_matrix(rows, instance.machine_count()).unwrap();
        let bumped_instance = Instance::new(
            instance.application().clone(),
            instance.platform().clone(),
            bumped,
        )
        .unwrap();
        let after = bumped_instance.demands(&mapping).unwrap();
        for task in instance.application().tasks() {
            assert!(
                after.get(task.id) >= before.get(task.id) - 1e-12,
                "case {case}: demand of {} fell from {} to {} after raising f[{i}][{u}]",
                task.id,
                before.get(task.id),
                after.get(task.id)
            );
        }
    }
}

/// `FailureRate::from_ratio` rejects the degenerate ratios the paper's model
/// cannot represent: every product lost (`f = 1` would need infinitely many
/// products) and an empty observation window.
#[test]
fn failure_rate_from_ratio_rejects_degenerate_ratios() {
    for processed in [1u64, 2, 7, 1000] {
        assert!(
            FailureRate::from_ratio(processed, processed).is_err(),
            "lost == processed ({processed}) must be rejected"
        );
        assert!(
            FailureRate::from_ratio(processed + 1, processed).is_err(),
            "lost > processed must be rejected"
        );
        let ok = FailureRate::from_ratio(processed - 1, processed).unwrap();
        assert!((0.0..1.0).contains(&ok.value()));
    }
    assert!(FailureRate::from_ratio(0, 0).is_err());
    assert!(FailureRate::from_ratio(5, 0).is_err());
    assert_eq!(FailureRate::from_ratio(0, 10).unwrap().value(), 0.0);
}

/// The one-to-one bottleneck optimum (when it applies) is never better than
/// the specialized optimum and never worse than any one-to-one mapping we can
/// build by hand (identity assignment).
#[test]
fn bottleneck_one_to_one_is_sandwiched() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for case in 0..CASES {
        let n = rng.gen_range(3..7usize);
        let seed = rng.gen_range(0..=u64::MAX);
        let instance = InstanceGenerator::new(GeneratorConfig::paper_task_failures(n, n + 2, 2))
            .generate(seed)
            .unwrap();
        let oto = optimal_one_to_one_bottleneck(&instance).unwrap();
        // Identity one-to-one mapping: task i on machine i.
        let identity =
            Mapping::from_indices(&(0..n).collect::<Vec<_>>(), instance.machine_count()).unwrap();
        let identity_period = instance.period(&identity).unwrap().value();
        assert!(oto.period.value() <= identity_period + 1e-9, "case {case}");

        let specialized = branch_and_bound(&instance, BnbConfig::default()).unwrap();
        assert!(
            specialized.period.value() <= oto.period.value() + 1e-9,
            "case {case}"
        );
    }
}

/// Every registered search strategy (H6, SD, TS — polishing any base) returns
/// a mapping no worse than its own seed heuristic's and keeps it specialized,
/// on any feasible instance.
#[test]
fn search_strategies_never_degrade_their_seed_heuristic() {
    use microfactory::heuristics::search::{polish_with, SteepestDescent, TabuSearch};
    let mut rng = StdRng::seed_from_u64(0x5EA2C4);
    for case in 0..CASES / 2 {
        let instance = random_instance(&mut rng, 20, 7);
        let seeded = H4wFastestMachine.map(&instance).unwrap();
        let seed_period = instance.period(&seeded).unwrap().value();
        let strategies: [(&str, &dyn microfactory::heuristics::SearchStrategy); 2] = [
            ("SD", &SteepestDescent::default()),
            ("TS", &TabuSearch::default()),
        ];
        for (label, strategy) in strategies {
            let polished = polish_with(&instance, &seeded, strategy, 30_000).unwrap();
            let period = instance.period(&polished).unwrap().value();
            assert!(
                period <= seed_period + 1e-9,
                "case {case}: {label} degraded {seed_period} to {period}"
            );
            assert!(
                instance.is_specialized(&polished),
                "case {case}: {label} broke the specialized rule"
            );
        }
    }
}

/// The staged partial-assignment evaluator agrees bit-for-bit with a plain
/// `load[u] += c` bookkeeping plus max-scan on random place/unplace walks —
/// the property that makes the evaluator-backed branch-and-bound explore the
/// identical tree.
#[test]
fn staged_evaluator_matches_manual_bookkeeping_on_random_walks() {
    let mut rng = StdRng::seed_from_u64(0x57A6ED);
    for case in 0..CASES {
        let machines = rng.gen_range(1..12usize);
        let mut staged = PartialAssignmentEvaluator::new(machines);
        let mut load = vec![0.0f64; machines];
        let mut trail: Vec<(usize, f64)> = Vec::new();
        for step in 0..200 {
            let place = trail.is_empty() || rng.gen_bool(0.6);
            if place {
                let u = rng.gen_range(0..machines);
                let c = rng.gen_range(0.0..1e4);
                staged.place(MachineId(u), c);
                load[u] += c;
                trail.push((u, c));
            } else {
                let (u, c) = trail.pop().unwrap();
                staged.unplace();
                load[u] -= c;
            }
            let scan = load.iter().copied().fold(0.0, f64::max);
            assert_eq!(
                staged.period().value().to_bits(),
                scan.to_bits(),
                "case {case}, step {step}: staged max diverged from the scan"
            );
            assert_eq!(staged.depth(), trail.len());
        }
    }
}
