//! Cross-validation of the analytic period against the discrete-event
//! simulator, on H6-polished mappings.
//!
//! The optimizers only ever reason about the analytic period `1/throughput`;
//! the simulator physically pushes products through machines and destroys
//! them with probability `f_{i,u}`. For the H6 local search to be
//! trustworthy, its polished mappings must show the same agreement between
//! the two models as any hand-built mapping.
//!
//! The quick variant runs a small batch in every `cargo test`. The long-run
//! variant tightens the statistical tolerance by simulating many more
//! products, so it is `#[ignore]`d here and exercised by the dedicated CI
//! step `cargo test --release -- --ignored`.

use microfactory::heuristics::{H6LocalSearch, LocalSearchConfig};
use microfactory::prelude::*;
use microfactory::sim::validate_mapping;

fn h6_mapping(instance: &Instance, seed: u64) -> Mapping {
    let seeded = H4wFastestMachine
        .map(instance)
        .expect("m >= p so H4w succeeds");
    let config = LocalSearchConfig {
        seed,
        ..LocalSearchConfig::default()
    };
    H6LocalSearch::polish(instance, &seeded, &config).expect("polishing cannot fail")
}

fn cross_validate(shapes: &[(usize, usize, usize)], products: u64, tolerance: f64) {
    for (case, &(n, m, p)) in shapes.iter().enumerate() {
        let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(n, m, p))
            .generate(0x51A1 + case as u64)
            .unwrap();
        let mapping = h6_mapping(&instance, case as u64);
        let report = validate_mapping(
            &instance,
            &mapping,
            SimulationConfig {
                seed: 0xCAFE + case as u64,
                target_products: products,
                warmup_products: (products / 20).max(100),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.produced >= products, "case {case}");
        assert!(
            report.agrees_within(tolerance),
            "case {case} (n={n}, m={m}, p={p}): analytic {} vs simulated {} \
             (relative error {:.4}, tolerance {tolerance})",
            report.analytic_period,
            report.simulated_period,
            report.relative_error
        );
    }
}

/// Small batch, loose statistical tolerance — runs in every `cargo test`.
#[test]
fn simulator_confirms_h6_periods_on_small_instances() {
    cross_validate(&[(6, 3, 2), (8, 4, 2), (10, 4, 3), (12, 5, 2)], 4_000, 0.10);
}

/// Long-run variant: more instances, 30k products each, 4% tolerance.
#[test]
#[ignore = "long-run simulation: exercised by the CI `--ignored` step"]
fn simulator_confirms_h6_periods_in_the_long_run() {
    cross_validate(
        &[
            (6, 3, 2),
            (8, 4, 2),
            (10, 4, 3),
            (12, 5, 2),
            (16, 6, 3),
            (20, 8, 4),
        ],
        30_000,
        0.04,
    );
}
