//! Round-trip tests of the plain-text instance/mapping format: starting from
//! *text* (parse → write → parse), complementing the write → parse unit tests
//! inside `mf_core::textio`.

use microfactory::model::textio;
use microfactory::prelude::*;

/// A hand-written instance file: 3 tasks over 2 types on 2 machines.
const INSTANCE_TEXT: &str = "\
# a hand-written micro-factory line
tasks 3
machines 2
types 2

task 0 0 successor 1
task 1 1 successor 2
task 2 0

time 0 0 120
time 0 1 180
time 1 0 250
time 1 1 90

failure 0 0 0.01
failure 0 1 0.02
failure 1 0 0.015
failure 1 1 0.005
failure 2 0 0.02
failure 2 1 0.01
";

const MAPPING_TEXT: &str = "\
# tasks 0 and 2 (type 0) on machine 0, task 1 (type 1) on machine 1
machines 2
assign 0 0
assign 1 1
assign 2 0
";

#[test]
fn instance_parse_write_parse_is_lossless() {
    let parsed = textio::instance_from_text(INSTANCE_TEXT).expect("hand-written file parses");
    assert_eq!(parsed.task_count(), 3);
    assert_eq!(parsed.machine_count(), 2);

    let written = textio::instance_to_text(&parsed);
    let reparsed = textio::instance_from_text(&written).expect("written file parses back");

    // The round trip preserves the whole model, not just the shape.
    assert_eq!(reparsed.task_count(), parsed.task_count());
    assert_eq!(reparsed.machine_count(), parsed.machine_count());
    assert_eq!(
        reparsed.application().type_count(),
        parsed.application().type_count()
    );
    for task in parsed.application().tasks() {
        assert_eq!(
            reparsed.application().successor(task.id),
            parsed.application().successor(task.id)
        );
        for machine in parsed.platform().machines() {
            assert_eq!(
                reparsed.time(task.id, machine),
                parsed.time(task.id, machine)
            );
            assert_eq!(
                reparsed.failure(task.id, machine).value(),
                parsed.failure(task.id, machine).value()
            );
        }
    }

    // A second write is byte-identical: the format is canonical after one trip.
    assert_eq!(textio::instance_to_text(&reparsed), written);
}

#[test]
fn mapping_parse_write_parse_is_lossless() {
    let parsed = textio::mapping_from_text(MAPPING_TEXT).expect("hand-written mapping parses");
    let written = textio::mapping_to_text(&parsed);
    let reparsed = textio::mapping_from_text(&written).expect("written mapping parses back");
    assert_eq!(reparsed, parsed);
    assert_eq!(textio::mapping_to_text(&reparsed), written);
}

#[test]
fn round_tripped_artifacts_still_evaluate() {
    let instance = textio::instance_from_text(INSTANCE_TEXT).unwrap();
    let instance = textio::instance_from_text(&textio::instance_to_text(&instance)).unwrap();
    let mapping = textio::mapping_from_text(MAPPING_TEXT).unwrap();
    let period = instance.period(&mapping).expect("valid mapping evaluates");
    assert!(period.value() > 0.0);

    // Generated instances survive the same trip for a spread of seeds.
    for seed in [1u64, 42, 20100607] {
        let generated = InstanceGenerator::new(GeneratorConfig::paper_standard(12, 5, 3))
            .generate(seed)
            .unwrap();
        let tripped = textio::instance_from_text(&textio::instance_to_text(&generated)).unwrap();
        let mapping = H4wFastestMachine.map(&generated).unwrap();
        let direct = generated.period(&mapping).unwrap().value();
        let after = tripped.period(&mapping).unwrap().value();
        assert!(
            (direct - after).abs() <= 1e-9 * direct.max(1.0),
            "seed {seed}: period drifted across the text round trip"
        );
    }
}
