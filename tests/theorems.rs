//! Integration tests tied to the paper's theoretical sections (§4 and §5):
//! the period algebra, Theorem 1's matching reduction, the 3-PARTITION gadget
//! of Theorem 2, and the hierarchy between mapping rules.

use microfactory::exact::{brute_force_one_to_one, brute_force_specialized};
use microfactory::prelude::*;

/// §4.1: for a linear chain, `xᵢ = Π_{j ≥ i} F_j` and the period of the
/// machine hosting `T₁` dominates when machines are homogeneous.
#[test]
fn chain_demand_formula_matches_closed_form() {
    let n = 6;
    let app = Application::linear_chain(&vec![0; n]).unwrap();
    let platform = Platform::homogeneous(n, 1, 100.0).unwrap();
    let rates: Vec<f64> = (0..n).map(|i| 0.02 * (i + 1) as f64).collect();
    let failures =
        FailureModel::from_matrix(rates.iter().map(|&f| vec![f; n]).collect(), n).unwrap();
    let instance = Instance::new(app, platform, failures).unwrap();
    let mapping = Mapping::from_indices(&(0..n).collect::<Vec<_>>(), n).unwrap();
    let demands = instance.demands(&mapping).unwrap();

    for i in 0..n {
        let closed_form: f64 = (i..n).map(|j| 1.0 / (1.0 - rates[j])).product();
        assert!(
            (demands.get(TaskId(i)) - closed_form).abs() < 1e-12,
            "x_{i} mismatch: {} vs {closed_form}",
            demands.get(TaskId(i))
        );
    }
    // With one task per machine and homogeneous times, the critical machine is
    // the one executing T1 (x1 is the largest demand).
    let periods = instance.machine_periods(&mapping).unwrap();
    assert_eq!(
        periods.critical_machines(1e-9),
        vec![mapping.machine_of(TaskId(0))]
    );
}

/// Theorem 1: the Hungarian reduction returns the optimal one-to-one mapping
/// on linear chains with homogeneous machines (checked against brute force on
/// instances large enough to be non-trivial).
#[test]
fn theorem1_hungarian_reduction_is_optimal() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 6;
        let m = 7;
        let app = Application::linear_chain(&vec![0; n]).unwrap();
        let platform = Platform::homogeneous(m, 1, 250.0).unwrap();
        let failures = FailureModel::from_matrix(
            (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..0.4)).collect())
                .collect(),
            m,
        )
        .unwrap();
        let instance = Instance::new(app, platform, failures).unwrap();

        let theorem = optimal_one_to_one_chain_homogeneous(&instance).unwrap();
        let brute = brute_force_one_to_one(&instance).unwrap();
        assert!(
            (theorem.period.value() - brute.period.value()).abs() < 1e-6,
            "seed {seed}: Hungarian {} vs brute force {}",
            theorem.period.value(),
            brute.period.value()
        );
    }
}

/// Theorem 2's gadget: machine-attached failure rates `f_u = (2^{z_u}−1)/2^{z_u}`
/// make the period of a chain mapped on machines `B` equal to `w·2^{Σ_{u∈B} z_u}`.
/// We verify the arithmetic that drives the 3-PARTITION reduction.
#[test]
fn theorem2_gadget_arithmetic() {
    let z = [1u32, 2, 3];
    let w = 1.0;
    let n = z.len();
    let app = Application::linear_chain(&vec![0; n]).unwrap();
    let platform = Platform::homogeneous(n, 1, w).unwrap();
    let machine_rates: Vec<FailureRate> = z
        .iter()
        .map(|&zu| {
            let p = f64::from(2u32.pow(zu));
            FailureRate::new((p - 1.0) / p).unwrap()
        })
        .collect();
    let failures = FailureModel::machine_dependent(&machine_rates, n);
    let instance = Instance::new(app, platform, failures).unwrap();
    let mapping = Mapping::from_indices(&[0, 1, 2], 3).unwrap();
    let periods = instance
        .machine_periods(&instance_mapping(&mapping))
        .unwrap();

    // The head of the chain needs 2^{z1+z2+z3} = 2^6 = 64 products.
    let expected = f64::from(2u32.pow(z.iter().sum::<u32>()));
    let head_machine = mapping.machine_of(TaskId(0));
    assert!((periods.of(head_machine).value() - expected * w).abs() < 1e-9);
    // And it is the critical machine, as the reduction requires.
    assert_eq!(
        periods.system_period().value(),
        periods.of(head_machine).value()
    );
}

// Helper so the test above reads naturally (the mapping is used as-is).
fn instance_mapping(mapping: &Mapping) -> Mapping {
    mapping.clone()
}

/// §5.2 / §4.2: relaxing the mapping rule can only improve the optimal period
/// (one-to-one ⊇ specialized ⊇ general in terms of constraints).
#[test]
fn mapping_rule_hierarchy_on_random_instances() {
    for seed in 0..3u64 {
        let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(4, 4, 2))
            .generate(seed)
            .unwrap();
        let one_to_one = brute_force_one_to_one(&instance).unwrap().period.value();
        let specialized = brute_force_specialized(&instance).unwrap().period.value();
        assert!(specialized <= one_to_one + 1e-9, "seed {seed}");
    }
}

/// §3.1: joins multiply the raw-product requirements of both branches, and
/// the required inputs are computed per source task.
#[test]
fn join_requires_products_on_every_branch() {
    let app = Application::paper_figure1();
    let n = app.task_count();
    let platform = Platform::homogeneous(n, app.type_count(), 100.0).unwrap();
    let failures = FailureModel::uniform(n, n, FailureRate::new(0.1).unwrap());
    let instance = Instance::new(app, platform, failures).unwrap();
    let mapping = Mapping::from_indices(&(0..n).collect::<Vec<_>>(), n).unwrap();
    let demands = instance.demands(&mapping).unwrap();
    let inputs = demands.required_inputs(instance.application(), 10);
    assert_eq!(inputs.len(), 2, "Figure 1 has two entry tasks");
    for (_, count) in inputs {
        assert!(
            count > 10,
            "failures must inflate the raw-product requirement"
        );
    }
}
