//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository has no crates.io access, so this
//! crate implements the *exact API subset* the `mf-bench` targets use:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's bootstrap statistics it reports min / median / mean
//! over `sample_size` timed samples (after one untimed warm-up), which is
//! plenty to compare orders of magnitude and catch regressions by eye. To
//! switch to the real harness, point the `criterion` entry of
//! `[workspace.dependencies]` back at the registry; no call site changes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Runs the measured closure and collects timing samples.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample (after one untimed warm-up call).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<50} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        samples.len()
    );
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, mirroring criterion's rendering.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// A parameter-only id (`criterion::BenchmarkId::from_parameter`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The harness entry point: holds defaults (sample size) and runs benchmarks.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(name, &mut bencher.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== group {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<I: Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &mut bencher.samples);
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &mut bencher.samples);
        self
    }

    /// Ends the group (purely cosmetic in the stand-in).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, optionally with a configured
/// [`Criterion`] (both forms of the upstream macro are accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` / `cargo test` pass harness flags (`--bench`,
            // `--test`, filters); the stand-in accepts and ignores them, but
            // honours `--test` (compile/smoke mode) by skipping execution.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0usize;
        c.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // one warm-up + five samples
        assert_eq!(runs, 6);
    }

    #[test]
    fn groups_inherit_and_override_sample_size() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("case", 1), &10usize, |b, &ten| {
            b.iter(|| {
                runs += 1;
                black_box(ten)
            })
        });
        group.sample_size(7);
        let mut runs2 = 0usize;
        group.bench_function("plain", |b| {
            b.iter(|| {
                runs2 += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 4);
        assert_eq!(runs2, 8);
    }

    #[test]
    fn benchmark_id_renders_like_criterion() {
        assert_eq!(
            BenchmarkId::new("hungarian", 50).to_string(),
            "hungarian/50"
        );
        assert_eq!(BenchmarkId::from_parameter(99).to_string(), "99");
    }
}
