//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate re-implements the *exact API subset* the workspace uses —
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::choose`] — on top of a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! The statistical properties are excellent for simulation purposes, but the
//! byte streams do **not** match upstream `rand` (whose `StdRng` is ChaCha12);
//! all determinism guarantees in this workspace are therefore *internal*:
//! the same seed always yields the same stream on every platform and thread
//! count, which is what the experiment harness relies on.
//!
//! To switch to the real crate, point the `rand` entry of
//! `[workspace.dependencies]` back at the registry; no call site changes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// A source of random 64-bit words — the minimal core every generator
/// implements.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state with SplitMix64 (the procedure upstream `rand`
    /// documents for `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive, integer or
    /// float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        distributions::unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Uniform sampling machinery backing [`Rng::gen_range`].
pub mod distributions {
    use super::RngCore;

    /// Converts 64 random bits into a uniform `f64` in `[0, 1)` using the
    /// top 53 bits.
    pub(crate) fn unit_f64(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A range that knows how to sample a uniform `T` from itself.
    pub trait SampleRange<T> {
        /// Draws one uniform sample.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Maps a random word onto `[0, bound)` with the widening-multiply
    /// technique (bias < 2⁻⁶⁴·bound, negligible for simulation workloads and,
    /// crucially, branch-free and deterministic).
    fn bounded(word: u64, bound: u64) -> u64 {
        ((u128::from(word) * u128::from(bound)) >> 64) as u64
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + bounded(rng.next_u64(), span) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every word is valid.
                        return rng.next_u64() as $t;
                    }
                    lo + bounded(rng.next_u64(), span) as $t
                }
            }
        )*};
    }
    int_ranges!(usize, u64, u32, u16, u8);

    macro_rules! float_ranges {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let u = unit_f64(rng.next_u64()) as $t;
                    self.start + u * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample from empty range");
                    let u = unit_f64(rng.next_u64()) as $t;
                    lo + u * (hi - lo)
                }
            }
        )*};
    }
    float_ranges!(f64, f32);
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Small (4 words of state), fast, passes BigCrush, and — unlike
    /// upstream's ChaCha12-based `StdRng` — trivially implementable without
    /// dependencies. Streams differ from upstream `rand`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro
            // authors: guarantees a non-zero state for every seed.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers ([`SliceRandom`]).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2.5..=9.5f64);
            assert!((2.5..=9.5).contains(&y));
            let z = rng.gen_range(0..=0usize);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_hits_both_sides_and_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "≈30% expected, got {hits}");
        assert!(!(0..1_000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1_000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn float_ranges_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = (0..20_000).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean ≈ 0.5, got {mean}");
    }

    #[test]
    fn choose_is_uniformish_and_total() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [1, 2, 3, 4];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[*items.choose(&mut rng).unwrap() as usize - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 1_500), "counts {counts:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }
}
