//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment of this repository has no crates.io access, so this
//! crate implements the *exact API subset* the workspace uses — indexed
//! parallel iterators over ranges and slices ([`prelude::IntoParallelIterator`],
//! [`prelude::ParallelIterator::map`], `collect`), [`ThreadPoolBuilder`] /
//! [`ThreadPool::install`], [`current_num_threads`] and [`join`] — on top of
//! `std::thread::scope`.
//!
//! Work distribution is dynamic (a shared atomic index doles out items to
//! whichever worker is free), but results are assembled **by item index**, so
//! the output of `map(...).collect()` is identical for every thread count —
//! the property the batch-evaluation engine's determinism tests pin down.
//!
//! To switch to the real crate, point the `rayon` entry of
//! `[workspace.dependencies]` back at the registry; no call site changes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`] for the
    /// duration of a closure on the calling thread.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel operations started from this thread will
/// use: the innermost [`ThreadPool::install`] override, or one per available
/// CPU.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_num_threads)
}

fn default_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error returned by [`ThreadPoolBuilder::build`]. The stand-in builder
/// cannot actually fail; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (one thread per available CPU).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads. `0` means "use the default".
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool. Never fails in the stand-in implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            Some(0) | None => default_num_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// A logical thread pool: parallel operations run inside
/// [`ThreadPool::install`] use its thread count.
///
/// Unlike real rayon this stand-in spawns scoped threads per operation rather
/// than keeping workers alive; for the coarse-grained work units of this
/// workspace (instance generation + heuristic evaluation) the spawn cost is
/// noise.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing every parallel
    /// operation started (transitively, on this thread) inside it.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let previous = INSTALLED_THREADS.with(|c| c.replace(Some(self.threads)));
        let _restore = Restore(previous);
        op()
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, RA, B, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        (a(), b())
    } else {
        std::thread::scope(|scope| {
            let hb = scope.spawn(b);
            (a(), hb.join().expect("rayon::join closure panicked"))
        })
    }
}

pub mod iter {
    //! The parallel-iterator subset: sources with known length and
    //! index-addressable items, composed with `map`, executed by an atomic
    //! work counter over scoped threads.

    use super::current_num_threads;
    use super::AtomicUsize;
    use super::Ordering;

    /// An indexed source of items: the backbone of every stand-in parallel
    /// iterator. Each item is produced independently from its index, which is
    /// what makes order-stable parallel collection possible.
    pub trait IndexedSource: Sync {
        /// The item type.
        type Item: Send;
        /// Number of items.
        fn len(&self) -> usize;
        /// `true` when the source has no items.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }
        /// Produces item `i` (`i < self.len()`). Must be pure w.r.t. `i`.
        fn item(&self, i: usize) -> Self::Item;
    }

    /// A parallel iterator over an [`IndexedSource`].
    #[derive(Debug)]
    pub struct ParIter<S> {
        source: S,
    }

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// The item type.
        type Item: Send;
        /// The concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Borrowing conversion (`par_iter` on slices and vectors).
    pub trait IntoParallelRefIterator<'data> {
        /// The item type (a reference).
        type Item: Send;
        /// The concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// A parallel iterator over references to `self`'s elements.
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// The operations available on every stand-in parallel iterator.
    pub trait ParallelIterator: Sized {
        /// The item type.
        type Item: Send;

        /// The underlying indexed source.
        type Source: IndexedSource<Item = Self::Item>;

        /// Unwraps the source.
        fn into_source(self) -> Self::Source;

        /// Maps every item through `f`.
        fn map<F, R>(self, f: F) -> ParIter<MapSource<Self::Source, F>>
        where
            F: Fn(Self::Item) -> R + Sync,
            R: Send,
        {
            ParIter {
                source: MapSource {
                    inner: self.into_source(),
                    f,
                },
            }
        }

        /// Executes the iterator on the current pool and collects the results
        /// **in item-index order**, regardless of thread count or scheduling.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_iter_vec(execute(&self.into_source()))
        }

        /// Executes the iterator for its side effects.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            let source = MapSource {
                inner: self.into_source(),
                f: |item| f(item),
            };
            let _ = execute(&source);
        }

        /// Sums the items.
        fn sum<T>(self) -> T
        where
            T: std::iter::Sum<Self::Item>,
        {
            execute(&self.into_source()).into_iter().sum()
        }
    }

    /// Collection types buildable from a parallel iterator.
    pub trait FromParallelIterator<T> {
        /// Builds the collection from the already-ordered item vector.
        fn from_par_iter_vec(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter_vec(items: Vec<T>) -> Self {
            items
        }
    }

    impl<S: IndexedSource> ParallelIterator for ParIter<S> {
        type Item = S::Item;
        type Source = S;

        fn into_source(self) -> S {
            self.source
        }
    }

    /// Source adapter applying a function to an inner source's items.
    #[derive(Debug)]
    pub struct MapSource<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, R> IndexedSource for MapSource<S, F>
    where
        S: IndexedSource,
        F: Fn(S::Item) -> R + Sync,
        R: Send,
    {
        type Item = R;

        fn len(&self) -> usize {
            self.inner.len()
        }

        fn item(&self, i: usize) -> R {
            (self.f)(self.inner.item(i))
        }
    }

    /// Range source (`(0..n).into_par_iter()`).
    #[derive(Debug)]
    pub struct RangeSource {
        start: usize,
        len: usize,
    }

    impl IndexedSource for RangeSource {
        type Item = usize;

        fn len(&self) -> usize {
            self.len
        }

        fn item(&self, i: usize) -> usize {
            self.start + i
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = ParIter<RangeSource>;

        fn into_par_iter(self) -> Self::Iter {
            let len = self.end.saturating_sub(self.start);
            ParIter {
                source: RangeSource {
                    start: self.start,
                    len,
                },
            }
        }
    }

    /// Slice source (`slice.par_iter()`).
    #[derive(Debug)]
    pub struct SliceSource<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> IndexedSource for SliceSource<'data, T> {
        type Item = &'data T;

        fn len(&self) -> usize {
            self.slice.len()
        }

        fn item(&self, i: usize) -> &'data T {
            &self.slice[i]
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = ParIter<SliceSource<'data, T>>;

        fn par_iter(&'data self) -> Self::Iter {
            ParIter {
                source: SliceSource { slice: self },
            }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = ParIter<SliceSource<'data, T>>;

        fn par_iter(&'data self) -> Self::Iter {
            ParIter {
                source: SliceSource { slice: self },
            }
        }
    }

    /// Evaluates every item of `source` on the ambient pool and returns them
    /// in index order.
    fn execute<S: IndexedSource>(source: &S) -> Vec<S::Item> {
        let len = source.len();
        let threads = current_num_threads().clamp(1, len.max(1));
        if threads == 1 || len <= 1 {
            return (0..len).map(|i| source.item(i)).collect();
        }

        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, S::Item)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= len {
                                break;
                            }
                            local.push((i, source.item(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel iterator worker panicked"))
                .collect()
        });

        let mut out: Vec<Option<S::Item>> = (0..len).map(|_| None).collect();
        for part in parts {
            for (i, value) in part {
                debug_assert!(out[i].is_none(), "item {i} computed twice");
                out[i] = Some(value);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every index is claimed by exactly one worker"))
            .collect()
    }
}

pub mod prelude {
    //! One-stop import, mirroring `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &v) in squares.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn identical_output_for_every_thread_count() {
        let reference: Vec<usize> = (0..257usize).into_par_iter().map(|i| i * 3 + 1).collect();
        for threads in [1usize, 2, 3, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<usize> =
                pool.install(|| (0..257usize).into_par_iter().map(|i| i * 3 + 1).collect());
            assert_eq!(got, reference, "thread count {threads} changed the output");
        }
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(
            current_num_threads(),
            outside,
            "install must restore on exit"
        );
    }

    #[test]
    fn slices_iterate_by_reference() {
        let data = vec![10u64, 20, 30, 40];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![20, 40, 60, 80]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<usize> = (5..5usize).into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
        let one: Vec<usize> = (7..8usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
